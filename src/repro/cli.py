"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table1          # Table I
    python -m repro fig11           # the 16kb test-chip experiment
    python -m repro latency         # §V latency comparison
    python -m repro serve           # trace-driven serving simulation
    python -m repro list            # everything available

Each subcommand prints the same rows/series the paper reports (the
benchmark suite wraps the identical generators with timing).

Every entry in :data:`EXPERIMENTS` is an :class:`Experiment` — its run
function, its one-line description, and an optional argument-registration
hook that :func:`build_parser` calls on the subparser, so a command's
flags live next to the command instead of in a growing ``if name == ...``
ladder inside the parser builder.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.report import format_table, render_series

__all__ = ["main", "build_parser", "Experiment", "EXPERIMENTS", "package_version"]


def package_version() -> str:
    """The package version.

    ``repro.__version__`` already resolves through ``importlib.metadata``
    (with the pyproject literal as fallback), so this is the single
    source of truth for every front end.
    """
    import repro

    return repro.__version__


def _cmd_table1(args) -> None:
    from repro.analysis.tables import table1_rows

    print("Table I — device parameters and operating points")
    print(format_table(["quantity", "reproduced", "paper"], table1_rows()))


def _cmd_table2(args) -> None:
    from repro.analysis.tables import table2_rows
    from repro.calibration import calibrated_cell

    print("Table II — robustness of the self-reference schemes")
    print(format_table(["quantity", "reproduced", "paper"], table2_rows(cell=calibrated_cell())))


def _cmd_fig2(args) -> None:
    from repro.analysis.figures import fig2_ri_curve
    from repro.calibration import calibrated_device

    series = fig2_ri_curve(calibrated_device())
    print("Fig. 2 — R–I characteristics")
    print(render_series(
        series.currents * 1e6,
        {"R_high [Ω]": series.r_high, "R_low [Ω]": series.r_low},
        x_label="I [µA]",
    ))
    print(f"TMR collapse 0→I_max: {series.tmr_collapse:.1%}")


def _cmd_fig6(args) -> None:
    from repro.analysis.figures import fig6_beta_sweep
    from repro.calibration import calibrated_cell

    series = fig6_beta_sweep(calibrated_cell())
    print("Fig. 6 — sense margin vs β (mV)")
    print(render_series(
        series.betas,
        {
            "SM0-Con": series.sm0_destructive,
            "SM1-Con": series.sm1_destructive,
            "SM0-Nondes": series.sm0_nondestructive,
            "SM1-Nondes": series.sm1_nondestructive,
        },
        x_label="β",
        y_scale=1e3,
    ))
    print(f"optima: destructive β = {series.crossing_destructive():.3f}, "
          f"nondestructive β = {series.crossing_nondestructive():.3f}")


def _cmd_fig7(args) -> None:
    from repro.analysis.figures import fig7_rtr_sweep
    from repro.calibration import calibrate, calibrated_cell

    calibration = calibrate()
    series = fig7_rtr_sweep(
        calibrated_cell(), calibration.beta_destructive, calibration.beta_nondestructive
    )
    print("Fig. 7 — sense margin vs ΔR_TR (mV)")
    print(render_series(
        series.shifts,
        {
            "SM0-Con": series.sm0_destructive,
            "SM1-Con": series.sm1_destructive,
            "SM0-Nondes": series.sm0_nondestructive,
            "SM1-Nondes": series.sm1_nondestructive,
        },
        x_label="ΔR_TR [Ω]",
        y_scale=1e3,
    ))
    print(f"windows: destructive ±{series.window_destructive[1]:.0f} Ω, "
          f"nondestructive ±{series.window_nondestructive[1]:.0f} Ω")


def _cmd_fig8(args) -> None:
    from repro.analysis.figures import fig8_alpha_sweep
    from repro.calibration import calibrate, calibrated_cell

    series = fig8_alpha_sweep(calibrated_cell(), calibrate().beta_nondestructive)
    print("Fig. 8 — nondestructive margin vs Δα (mV)")
    print(render_series(
        series.deviations * 100,
        {"SM0": series.sm0, "SM1": series.sm1},
        x_label="Δα [%]",
        y_scale=1e3,
    ))
    print(f"window: {series.window[0]:+.2%} .. {series.window[1]:+.2%}")


def _cmd_fig9(args) -> None:
    from repro.calibration import calibrate, calibrated_cell
    from repro.timing.latency import nondestructive_read_latency

    breakdown = nondestructive_read_latency(
        calibrated_cell(), beta=calibrate().beta_nondestructive
    )
    print("Fig. 9 — nondestructive read timing")
    for signal in ("WL", "SLT1", "SLT2", "SenEn", "Data_latch"):
        intervals = breakdown.schedule.signal_intervals(signal)
        pretty = ", ".join(f"{a*1e9:.2f}–{b*1e9:.2f} ns" for a, b in intervals)
        print(f"  {signal:<11}: {pretty}")
    print(f"total: {breakdown.total * 1e9:.1f} ns")


def _cmd_fig10(args) -> None:
    from repro.calibration import calibrate
    from repro.timing.waveforms import simulate_nondestructive_read

    calibration = calibrate()
    cell = calibration.cell(917.0)
    cell.write(args.bit)
    waveforms = simulate_nondestructive_read(cell, beta=calibration.beta_nondestructive)
    print(f"Fig. 10 — read transient (stored '{args.bit}')")
    print(render_series(
        waveforms.times * 1e9,
        {
            "V_BL [mV]": waveforms.v_bl * 1e3,
            "V_C1 [mV]": waveforms.v_c1 * 1e3,
            "V_BO [mV]": waveforms.v_bo * 1e3,
        },
        x_label="t [ns]",
        max_rows=14,
    ))
    print(f"sensed: {waveforms.sensed_bit} "
          f"({waveforms.sense_differential * 1e3:+.2f} mV) in "
          f"{waveforms.total_duration * 1e9:.1f} ns")


def _cmd_fig11(args) -> None:
    from repro.array.testchip import run_testchip_experiment

    result = run_testchip_experiment()
    print("Fig. 11 — 16kb test chip at the 8 mV window")
    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        stats = result.report[name]
        rows.append([
            name,
            str(stats.fail_count),
            f"{stats.fail_fraction:.2%}",
            f"{stats.mean_margin * 1e3:.2f} mV",
            f"{stats.min_margin * 1e3:.2f} mV",
        ])
    print(format_table(["scheme", "fails", "rate", "mean", "worst"], rows))


def _cmd_latency(args) -> None:
    from repro.calibration import calibrate, calibrated_cell
    from repro.timing.latency import latency_comparison

    calibration = calibrate()
    destructive, nondestructive, speedup = latency_comparison(
        calibrated_cell(),
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
    )
    print(f"destructive:    {destructive.total * 1e9:.1f} ns")
    print(f"nondestructive: {nondestructive.total * 1e9:.1f} ns  "
          f"({speedup:.2f}x faster)")


def _cmd_energy(args) -> None:
    from repro.calibration import calibrate, calibrated_cell
    from repro.timing.energy import read_energy_comparison

    calibration = calibrate()
    destructive, nondestructive, ratio = read_energy_comparison(
        calibrated_cell(),
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
    )
    print(f"destructive:    {destructive.total * 1e12:.2f} pJ "
          f"(writes {destructive.write_energy * 1e12:.2f} pJ)")
    print(f"nondestructive: {nondestructive.total * 1e12:.2f} pJ  "
          f"({ratio:.1f}x lower)")


def _cmd_corners(args) -> None:
    from repro.analysis.corners import temperature_corner_sweep
    from repro.calibration import calibrate

    calibration = calibrate()
    corners = temperature_corner_sweep(
        calibration.params, calibration.rolloff_high(), calibration.rolloff_low()
    )
    rows = []
    for corner in corners:
        rows.append([
            f"{corner.temperature:.0f} K",
            f"{corner.tmr:.0%}",
            f"{corner.destructive.max_sense_margin * 1e3:.1f} mV",
            f"{corner.nondestructive.max_sense_margin * 1e3:.1f} mV",
            "yes" if corner.nondestructive_margin_ok else "NO",
        ])
    print("Temperature corners (margins re-optimized per corner)")
    print(format_table(
        ["T", "TMR", "destructive SM", "nondestructive SM", ">8 mV?"], rows
    ))



def _cmd_disturb(args) -> None:
    from repro.calibration import calibrate
    from repro.device.retention import RetentionAnalysis

    analysis = RetentionAnalysis(calibrate().params)
    print("read-disturb budget (Δ = 60, 15 ns reads)")
    rows = []
    for fraction in (0.2, 0.4, 0.6, 0.8):
        current = fraction * analysis.params.i_c0
        rows.append([
            f"{fraction:.0%} I_c0",
            f"{analysis.disturb_probability_per_read(current):.2e}",
            f"{analysis.lifetime_reads(current, 1e-4):.2e}",
        ])
    print(format_table(["read current", "P(flip)/read", "reads to 1e-4"], rows))


def _cmd_trim(args) -> None:
    from repro.calibration import calibrate, calibrated_cell
    from repro.core.trim import beta_compensating_alpha

    cell = calibrated_cell()
    print("test-stage β trim compensating divider skew (paper §V)")
    rows = []
    for deviation in (-0.06, -0.03, 0.0, 0.03, 0.06):
        optimum = beta_compensating_alpha(cell, 0.5, deviation)
        rows.append([
            f"{deviation:+.0%}",
            f"{optimum.beta:.3f}",
            f"{optimum.max_sense_margin * 1e3:.2f} mV",
        ])
    print(format_table(["α skew", "compensated β", "restored margin"], rows))


def _cmd_capacity(args) -> None:
    import numpy as np

    from repro.analysis.scaling import project_scaling
    from repro.array.montecarlo import run_margin_monte_carlo
    from repro.array.testchip import TESTCHIP_VARIATION
    from repro.array.yield_analysis import analyze_margins
    from repro.calibration import calibrate
    from repro.device.variation import CellPopulation

    calibration = calibrate()
    population = CellPopulation.sample(
        16384, TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(17),
    )
    yield_report = analyze_margins(run_margin_monte_carlo(
        population,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
        include_sa_offset=False,
    ))
    print("capacity projection (Gaussian tail, 8 mV window)")
    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        projection = project_scaling(yield_report[name])
        capacity = projection.clean_capacity_bits
        label = "unbounded" if capacity >= 2**60 else f"{capacity:.3g} bits"
        rows.append([name, f"{projection.bit_fail_probability:.2e}", label])
    print(format_table(["scheme", "P(bit fails)", "clean capacity"], rows))


def _cmd_sensitivity(args) -> None:
    from repro.analysis.sensitivity import margin_sensitivities
    from repro.calibration import calibrate, calibrated_cell

    calibration = calibrate()
    entries = margin_sensitivities(
        calibrated_cell(),
        calibration.beta_destructive,
        calibration.beta_nondestructive,
    )
    print("normalized margin sensitivities (% margin per % parameter)")
    print(format_table(
        ["parameter", "scheme", "sensitivity"],
        [[e.parameter, e.scheme, f"{e.sensitivity:+7.2f}"] for e in entries],
    ))


def _cmd_ber(args) -> None:
    import numpy as np

    from repro.analysis.ber import read_error_budget
    from repro.array.montecarlo import run_margin_monte_carlo
    from repro.array.testchip import TESTCHIP_VARIATION
    from repro.calibration import calibrate
    from repro.device.variation import CellPopulation

    calibration = calibrate()
    population = CellPopulation.sample(
        16384, TESTCHIP_VARIATION,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=np.random.default_rng(23),
    )
    budgets = read_error_budget(run_margin_monte_carlo(
        population,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
        include_sa_offset=False,
    ))
    print("per-read error budget (16k-bit Monte Carlo)")
    rows = []
    for name in ("conventional", "destructive", "nondestructive"):
        b = budgets[name]
        rows.append([
            name, f"{b.margin_failure:.2e}", f"{b.metastability:.2e}",
            f"{b.noise_flip:.1e}", f"{b.write_error:.1e}",
            f"{b.total_per_read:.2e}",
        ])
    print(format_table(
        ["scheme", "margin", "metastable", "noise", "write", "total/read"],
        rows,
    ))


def _write_obs_outputs(args, registry, tracer) -> None:
    """Write ``--metrics-out`` / ``--trace-out`` artifacts if requested.

    The metrics JSON excludes the wall-clock ``profile`` section unless
    ``--profile`` was passed, so the default artifact is byte-reproducible
    under a fixed seed.
    """
    if getattr(args, "metrics_out", None):
        registry.write_json(args.metrics_out, profile=getattr(args, "profile", False))
        print(f"wrote metrics to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        tracer.write_jsonl(args.trace_out)
        print(f"wrote {len(tracer.events())} trace events to {args.trace_out}"
              + (f" ({tracer.dropped} dropped)" if tracer.dropped else ""))


def _cmd_faults(args) -> None:
    from repro import obs
    from repro.core.retry import RetryPolicy
    from repro.errors import FaultError
    from repro.faults import run_fault_campaign

    metered = bool(args.metrics_out or args.trace_out)
    if metered:
        registry, tracer = obs.configure(enabled=True)
    policy = RetryPolicy(
        max_attempts=args.attempts, backoff_ns=5.0, current_escalation=0.1
    )
    result = run_fault_campaign(
        rates=tuple(args.rates),
        bits=args.bits,
        scheme=args.scheme,
        policy=policy,
        seed=args.seed,
    )
    if metered:
        _write_obs_outputs(args, registry, tracer)
        obs.reset()
    print(f"fault campaign — {args.scheme} scheme, {args.bits} bits, "
          f"seed {args.seed}")
    rows = []
    for row in result.rows:
        rows.append([
            f"{row.rate:g}",
            str(row.injected_cells),
            str(row.faulty_words),
            str(row.correctable_words),
            f"{row.recovery_fraction:.1%}",
            str(row.detected_words),
            str(row.escaped_words),
            "/".join(str(row.tier_counts[t])
                     for t in ("clean", "retry", "ecc", "scrub", "repair")),
        ])
    print(format_table(
        ["rate", "cells hit", "faulty", "correctable", "recovered",
         "detected", "escaped", "clean/retry/ecc/scrub/repair"],
        rows,
    ))
    if args.check:
        try:
            result.check()
        except FaultError as error:
            print(f"FAIL: {error}")
            raise SystemExit(1)
        print("PASS: all correctable faults recovered, nothing escaped")


def _cmd_stats(args) -> None:
    import numpy as np

    from repro import obs
    from repro.array.array import STTRAMArray
    from repro.array.testchip import TESTCHIP_VARIATION
    from repro.calibration import PAPER_TARGETS, calibrate
    from repro.core.retry import RetryPolicy
    from repro.device.variation import CellPopulation
    from repro.ecc.array import EccArray
    from repro.faults import FaultInjector, build_scheme, default_fault_models

    registry, tracer = obs.configure(enabled=True)
    try:
        calibration = calibrate()
        scheme = build_scheme(args.scheme, calibration, PAPER_TARGETS.r_transistor)
        rng_build = np.random.default_rng((args.seed, 0))
        rng_fault = np.random.default_rng((args.seed, 1))
        rng_read = np.random.default_rng((args.seed, 2))
        population = CellPopulation.sample(
            args.bits, TESTCHIP_VARIATION,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng_build,
            r_tr_nominal=PAPER_TARGETS.r_transistor,
        )
        array = STTRAMArray(population)
        memory = EccArray(array)
        for address in range(memory.size_words):
            value = int.from_bytes(rng_build.bytes(8), "little")
            value &= (1 << memory.codec.data_bits) - 1
            memory.write_word(address, value)

        injector = FaultInjector(default_fault_models(args.rate), rng_fault)
        injector.inject_array(array)
        injector.disturb_states(array._states)

        policy = RetryPolicy(max_attempts=3, backoff_ns=5.0, current_escalation=0.1)
        array.read_all_with_retry(scheme, policy, rng_read)
        memory.scrub(scheme, rng_read, retry_policy=policy)

        # Backed-serving phase: a short coalesced read burst through the
        # memory controller so the service.backend.* metrics (attempts,
        # failed_words, batch_size) appear in the dump.
        from repro.faults.recovery import RecoveryController
        from repro.service import (
            ArrayBackend,
            ControllerConfig,
            DiscreteEventEngine,
            MemoryController,
            build_workload,
            scheme_service_times,
        )

        backend = ArrayBackend(
            RecoveryController(memory, policy), scheme,
            np.random.default_rng((args.seed, 3)), injector=injector,
        )
        read_time, write_time = scheme_service_times(args.scheme)
        engine = DiscreteEventEngine()
        controller = MemoryController(
            engine,
            ControllerConfig(read_time=read_time, write_time=write_time,
                             banks=2, batch_limit=8),
            policy="batch", backend=backend, retry_policy=policy,
        )
        stream = build_workload(rate=2e8, addresses=memory.size_words)
        controller.submit_all(
            stream.generate(64, np.random.default_rng((args.seed, 4)))
        )
        engine.run()

        snapshot = registry.snapshot(profile=False)
        print(f"instrumented workload — {args.scheme} scheme, {args.bits} bits, "
              f"fault rate {args.rate:g}, seed {args.seed}")
        print()
        print(format_table(
            ["counter", "value"],
            [[key, f"{value:g}"] for key, value in snapshot["counters"].items()],
        ))
        hist_rows = []
        for key, hist in snapshot["histograms"].items():
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            hist_rows.append([
                key, str(hist["count"]), f"{mean:g}",
                f"{hist['min']:g}", f"{hist['max']:g}",
            ])
        if hist_rows:
            print()
            print(format_table(["histogram", "count", "mean", "min", "max"], hist_rows))
        counts = tracer.counts_by_kind()
        if counts:
            print()
            print(format_table(
                ["trace event", "count"],
                [[kind, str(n)] for kind, n in sorted(counts.items())],
            ))

        # Durability counters: a one-rate fault campaign surfaces what
        # the recovery ladder holds onto across mid-read power loss —
        # the request-level complement of the chaos campaign's
        # write-ahead-journal gate.
        from repro.faults import run_fault_campaign

        campaign = run_fault_campaign(
            rates=(args.rate,), bits=args.bits, scheme=args.scheme,
            policy=policy, seed=args.seed,
        )
        durability = campaign.rows[0]
        print()
        print(format_table(
            ["durability counter", "value"],
            [
                ["power_failure_words", str(durability.power_failure_words)],
                ["detected_words", str(durability.detected_words)],
                ["escaped_words", str(durability.escaped_words)],
                ["recovery_fraction", f"{durability.recovery_fraction:.1%}"],
            ],
        ))
        _write_obs_outputs(args, registry, tracer)
    finally:
        obs.reset()


def _cmd_export(args) -> None:
    from repro.analysis.export import export_all_figures

    written = export_all_figures(args.directory)
    print(f"wrote {len(written)} CSV files:")
    for path in written:
        print(f"  {path}")


def _serve_topology(args):
    """The parsed :class:`~repro.service.Topology`, or None without
    ``--topology``; spec errors surface as clean CLI messages."""
    from repro.errors import ConfigurationError
    from repro.service import Topology

    if not args.topology:
        return None
    try:
        return Topology.parse(args.topology, rows=args.rows)
    except ConfigurationError as error:
        print(f"error: invalid topology: {error}")
        raise SystemExit(2) from None


def _serve_addresses(args) -> int:
    """The logical address-space size: explicit ``--addresses``, else the
    topology's full capacity (so the workload exercises the whole part),
    else the historical 2048-word default."""
    if args.addresses is not None:
        return args.addresses
    topology = _serve_topology(args)
    return topology.capacity if topology is not None else 2048


def _serve_requests(args):
    """The request stream for ``repro serve``: replayed or generated."""
    from repro.service import build_workload, load_trace

    if args.trace_in:
        return load_trace(args.trace_in)
    stream = build_workload(
        kind=args.workload,
        addressing=args.addressing,
        rate=args.rate,
        addresses=_serve_addresses(args),
        write_fraction=args.write_fraction,
        low_priority_fraction=args.low_priority_fraction,
    )
    from repro.streams import stream_rng

    requests = stream.generate(args.requests, stream_rng(args.seed, "workload"))
    if args.deadline_ns > 0.0:
        # Stamp deadlines before --trace-out runs so a saved trace
        # replays bit-identically under --check.
        slack = args.deadline_ns * 1e-9
        requests = [
            dataclasses.replace(request, deadline=request.time + slack)
            for request in requests
        ]
    return requests


def _serve_config(args):
    """The :class:`ControllerConfig` for ``repro serve``, with knob errors
    surfaced as clean CLI messages rather than tracebacks."""
    from repro.errors import ConfigurationError
    from repro.service import ControllerConfig, scheme_service_times

    read_time, write_time = scheme_service_times(args.scheme)
    try:
        return ControllerConfig(
            read_time=read_time, write_time=write_time, banks=args.banks,
            batch_limit=args.batch_limit,
            batch_extra_fraction=args.batch_extra_fraction,
            backend_window=args.backend_window,
            request_retries=args.request_retries,
            retry_backoff=args.retry_backoff_ns * 1e-9,
            hedge_after=args.hedge_after_ns * 1e-9,
        )
    except ConfigurationError as error:
        print(f"error: invalid controller configuration: {error}")
        raise SystemExit(2) from None


def _serve_backed(args) -> bool:
    """Whether the run needs a real array (drift and adaptive imply it)."""
    return (
        args.backed or args.fault_rate > 0.0
        or args.adaptive or args.drift != "none"
    )


def _serve_slo(args):
    """The SLO target and adaptive tuning, with knob errors surfaced as
    clean CLI messages rather than tracebacks."""
    from repro.errors import ConfigurationError
    from repro.service import AdaptiveConfig, SLOTarget

    try:
        slo = SLOTarget(
            p99_read_latency=args.slo_p99_ns * 1e-9, guardband=args.guardband
        )
        adaptive_config = AdaptiveConfig(
            control_interval=args.control_interval_ns * 1e-9,
            window=args.window,
            burst=args.burst,
            low_priority_reserve=args.low_priority_reserve,
            backpressure_depth=args.shed_depth,
        )
    except ConfigurationError as error:
        print(f"error: invalid adaptive configuration: {error}")
        raise SystemExit(2) from None
    return slo, adaptive_config


def _serve_drift(args, requests):
    """The mid-trace drift scenario (and its dedicated strike RNG).

    Scenarios are placed across the middle half of the trace: onset at
    25% of the stream's span, clearing (where the scenario clears at
    all) at 75%.
    """
    from repro.errors import ConfigurationError
    from repro.faults import (
        aging_rolloff_shift,
        field_disturbance_window,
        sense_amp_drift_step,
        temperature_ramp,
    )

    if args.drift == "none":
        return None, None
    span = max(request.time for request in requests)
    offset = args.drift_offset_mv * 1e-3
    start, duration = 0.25 * span, 0.5 * span
    try:
        if args.drift == "temperature-ramp":
            scenario = temperature_ramp(start, duration, offset)
        elif args.drift == "field-window":
            scenario = field_disturbance_window(
                start, duration, offset, flip_fraction=args.drift_flip_fraction
            )
        elif args.drift == "rolloff-shift":
            scenario = aging_rolloff_shift(start, duration, offset)
        else:
            scenario = sense_amp_drift_step(start, offset)
    except ConfigurationError as error:
        print(f"error: invalid drift scenario: {error}")
        raise SystemExit(2) from None
    from repro.streams import stream_rng

    return scenario, stream_rng(args.seed, "drift")


def _serve_failures(args, requests):
    """The structural failure scenario for ``repro serve``, or None.

    The scenario geometry is a pure function of the reserved ``(seed, 7)``
    stream and the trace span, so ``--check``'s replayed and regenerated
    runs rebuild the identical failure calendar.
    """
    from repro.service import build_failure_scenario

    if args.failures == "none":
        return None
    if args.adaptive or args.drift != "none":
        print("error: --failures does not compose with --adaptive/--drift")
        raise SystemExit(2)
    topology = _serve_topology(args)
    if args.failures == "channel-outage" and topology is None:
        print("error: --failures channel-outage takes whole channels "
              "down and needs --topology")
        raise SystemExit(2)
    if args.failures != "channel-outage" and topology is not None:
        print(f"error: --failures {args.failures} runs on the flat "
              "controller; only channel-outage composes with --topology")
        raise SystemExit(2)
    span = max(request.time for request in requests)
    return build_failure_scenario(
        args.failures, span,
        seed=args.seed,
        banks=args.banks,
        channels=topology.channels if topology is not None else 1,
        stall_factor=args.stall_factor,
    )


def _serve_topology_once(args, requests, failures=None):
    """One sharded topology simulation (see :mod:`repro.service.topology`)."""
    from repro.errors import ConfigurationError
    from repro.service import scheme_service_times, simulate_topology

    if args.adaptive or args.drift != "none":
        print("error: --topology runs static policies only; "
              "--adaptive/--drift do not compose with it yet")
        raise SystemExit(2)
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}")
        raise SystemExit(2)
    topology = _serve_topology(args)
    read_time, write_time = scheme_service_times(args.scheme)
    try:
        return simulate_topology(
            requests,
            topology,
            interleave=args.interleave,
            read_time=read_time,
            write_time=write_time,
            policy=args.policy,
            scheme=args.scheme,
            offered_rate=args.rate,
            cache_capacity=args.cache,
            batch_limit=args.batch_limit,
            batch_extra_fraction=args.batch_extra_fraction,
            backend_window=args.backend_window,
            backend_mode=args.backend_mode,
            backed=_serve_backed(args),
            fault_rate=args.fault_rate,
            seed=args.seed,
            processes=args.shards,
            failures=failures,
        )
    except ConfigurationError as error:
        print(f"error: invalid topology configuration: {error}")
        raise SystemExit(2) from None


def _serve_once(args, requests):
    """One full service simulation with freshly built components."""
    from repro.service import (
        ReadCache,
        build_backend,
        simulate_adaptive_service,
        simulate_service,
    )

    failures = _serve_failures(args, requests)
    if args.topology:
        return _serve_topology_once(args, requests, failures)
    config = _serve_config(args)
    cache = ReadCache(args.cache) if args.cache > 0 else None
    backend = None
    retry_policy = None
    if _serve_backed(args):
        backend, retry_policy = build_backend(
            args.scheme, seed=args.seed, fault_rate=args.fault_rate
        )
    if args.adaptive or args.drift != "none":
        slo, adaptive_config = _serve_slo(args) if args.adaptive else (None, None)
        scenario, drift_rng = _serve_drift(args, requests)
        return simulate_adaptive_service(
            requests, config, backend=backend, slo=slo,
            adaptive_config=adaptive_config, adaptive=args.adaptive,
            policy=args.policy, cache=cache, retry_policy=retry_policy,
            scenario=scenario, drift_rng=drift_rng, scheme=args.scheme,
            offered_rate=args.rate, backend_mode=args.backend_mode,
        )
    return simulate_service(
        requests, config, policy=args.policy, cache=cache, backend=backend,
        retry_policy=retry_policy, scheme=args.scheme, offered_rate=args.rate,
        backend_mode=args.backend_mode, failures=failures,
    )


def _cmd_serve(args) -> None:
    import os
    import tempfile

    from repro import obs
    from repro.service import (
        load_trace,
        publish_report,
        publish_topology_report,
        save_trace,
    )

    requests = _serve_requests(args)
    if args.trace_out:
        count = save_trace(args.trace_out, requests)
        print(f"wrote {count} requests to {args.trace_out}")

    metered = bool(args.metrics_out)
    if metered:
        registry, _ = obs.configure(enabled=True)
    try:
        report = _serve_once(args, requests)
        if metered:
            if args.topology:
                publish_topology_report(report)
            else:
                publish_report(report)
            registry.write_json(args.metrics_out, profile=args.profile)
            print(f"wrote metrics to {args.metrics_out}")
    finally:
        if metered:
            obs.reset()

    # A topology run yields a TopologyReport; its merged ServiceReport
    # carries the same summary surface as a flat single-controller run.
    topology_report = report if args.topology else None
    summary = report.merged if args.topology else report

    source = f"trace {args.trace_in}" if args.trace_in else (
        f"{args.workload}/{args.addressing} workload, seed {args.seed}")
    if topology_report is not None:
        shape = topology_report.topology
        print(f"topology service simulation — {args.scheme} scheme, "
              f"{args.policy} policy, {shape.describe()} topology "
              f"({summary.banks} banks), {args.interleave} interleave, "
              f"{args.shards} shard process(es), {source}")
    else:
        print(f"service simulation — {args.scheme} scheme, {args.policy} "
              f"policy, {summary.banks} banks, {source}")
    stats = summary.read_latency
    rows = [
        ["requests", f"{summary.requests} ({summary.reads} reads, "
                     f"{summary.writes} writes)"],
        ["offered rate", f"{summary.offered_rate:.3g} req/s"],
        ["throughput", f"{summary.throughput:.3g} req/s"],
        ["read latency mean", f"{stats.mean * 1e9:.2f} ns "
                              f"({summary.read_slowdown:.2f}x unloaded)"],
        ["read latency p50/p99/p99.9",
         f"{stats.p50 * 1e9:.2f} / {stats.p99 * 1e9:.2f} / "
         f"{stats.p999 * 1e9:.2f} ns"],
        ["queue depth mean/max",
         f"{summary.queue_depth.mean_depth:.2f} / {summary.queue_depth.max_depth}"],
        ["bank loads", "/".join(str(n) for n in summary.bank_served)],
    ]
    if topology_report is not None:
        rows.append(["channel loads", "/".join(
            str(n) for n in topology_report.channel_served)])
        if topology_report.topology.ranks > 1:
            rows.append(["rank loads", "/".join(
                str(n) for n in topology_report.rank_served)])
        rows.append(["channel p99 read", " / ".join(
            f"{r.read_latency.p99 * 1e9:.1f}"
            for r in topology_report.channel_reports) + " ns"])
    if args.cache > 0:
        rows.append(["cache hit rate", f"{summary.cache_hit_rate:.1%} "
                                       f"({summary.cache_hits} hits)"])
    if _serve_backed(args):
        rows.append(["recovery", f"{summary.retried_words} retried, "
                                 f"{summary.failed_words} failed, "
                                 f"{summary.corrupted_words} corrupted"])
    if args.drift != "none":
        rows.append(["drift scenario", f"{args.drift} "
                                       f"({args.drift_offset_mv:g} mV peak)"])
    if args.failures != "none":
        rows.append(["failure scenario", args.failures])
    resilient = (
        args.failures != "none" or args.deadline_ns > 0.0
        or args.request_retries > 0 or args.hedge_after_ns > 0.0
    )
    if resilient:
        rows.append(["resilience", f"{summary.timed_out} timed out, "
                                   f"{summary.failed_requests} failed, "
                                   f"{summary.detected_loss} detected-loss"])
        rows.append(["hedging/retries", f"{summary.hedged} hedged "
                                        f"({summary.hedge_wins} wins), "
                                        f"{summary.request_retries} retries"])
        rows.append(["availability", f"{summary.availability:.1%}"])
    if topology_report is not None and topology_report.failover is not None:
        failover = topology_report.failover
        rows.append(["failover", f"{failover.rerouted_writes} writes "
                                 f"rerouted, "
                                 f"{failover.unreachable_requests} "
                                 f"unreachable, {failover.restored_words} of "
                                 f"{failover.remapped_words} remaps restored"])
    if args.adaptive:
        rows.append(["SLO p99", f"{args.slo_p99_ns:g} ns "
                                f"(guardband {args.guardband:g})"])
        rows.append(["adaptation", f"{report.adaptive_actions} actions, "
                                   f"{report.adaptive_alarms} alarms, "
                                   f"{report.scrubbed_words} scrubbed"])
        rows.append(["degradation", f"{report.shed} shed "
                                    f"({report.shed_low_priority} low-priority, "
                                    f"{report.shed_rate:.1%} of offered)"])
    print(format_table(["metric", "value"], rows))

    if args.check:
        # Bit-reproducibility gate: a saved-and-reloaded trace and a fresh
        # same-seed live generation must both reproduce the report exactly.
        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        try:
            save_trace(path, requests)
            replay = _serve_once(args, load_trace(path))
        finally:
            os.unlink(path)
        live = _serve_once(args, _serve_requests(args)) if not args.trace_in \
            else replay
        if replay != report or live != report:
            print("FAIL: replayed/regenerated runs diverged from the live run")
            raise SystemExit(1)
        print("PASS: trace replay and same-seed regeneration are bit-identical")


def _cmd_chaos(args) -> None:
    from repro.errors import FaultError
    from repro.service import run_chaos_campaign

    result = run_chaos_campaign(
        args.requests,
        scheme=args.scheme,
        seed=args.seed,
        bits=args.bits,
        availability_floor=args.availability_floor,
    )
    print(f"chaos campaign — {result.scheme} scheme, {result.bits} bits, "
          f"seed {result.seed}, availability floor "
          f"{result.availability_floor:.0%}")
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            str(row.requests),
            str(row.completed),
            str(row.shed),
            str(row.timed_out),
            str(row.failed_requests),
            str(row.detected_loss),
            str(row.retries),
            str(row.hedged),
            f"{row.availability:.1%}",
            "yes" if row.conserved else "NO",
            "yes" if row.bit_exact else "NO",
        ])
    print(format_table(
        ["scenario", "reqs", "done", "shed", "t/o", "fail", "loss",
         "retry", "hedge", "avail", "conserved", "bit-exact"],
        rows,
    ))
    if args.check:
        try:
            result.check()
        except FaultError as error:
            print(f"FAIL: {error}")
            raise SystemExit(1)
        print("PASS: requests conserved, zero silent escapes, bit-exact "
              "crash recovery, availability above floor")


def _cmd_prodtest(args) -> None:
    import dataclasses as _dataclasses

    from repro import obs
    from repro.prodtest import (
        WaferConfig, build_wafer, publish_wafer_report, run_wafer,
    )

    schemes = (
        ("conventional", "destructive", "nondestructive")
        if args.scheme == "all"
        else (args.scheme,)
    )
    base = WaferConfig(
        dies=args.dies,
        march=args.march,
        seed=args.seed,
        variation_scale=args.variation_scale,
    )
    metered = bool(args.metrics_out)
    if metered:
        registry, tracer = obs.configure(enabled=True)

    summaries = []
    for scheme in schemes:
        config = _dataclasses.replace(base, scheme=scheme)
        result = run_wafer(build_wafer(config))
        summaries.append((config, result, publish_wafer_report(result)))
    if metered:
        _write_obs_outputs(args, registry, tracer)
        obs.reset()

    print(f"production test — {args.dies} dies/wafer, {base.cells} cells/die, "
          f"march {summaries[0][1].march}, seed {args.seed}, "
          f"variation {args.variation_scale:g}x")
    rows = []
    for _, result, summary in summaries:
        rows.append([
            summary.scheme,
            f"{summary.ship_rate:.1%}",
            f"{summary.shipped}/{summary.dies}",
            str(summary.gross_fails),
            str(summary.char_fails),
            str(summary.ecc_uncovered),
            f"{summary.coverage['overall']:.1%}",
            f"{summary.mean_test_seconds * 1e3:.3f}",
            f"{summary.cost_per_good_bit:.3f}"
            if summary.good_bits else "inf",
        ])
    print(format_table(
        ["scheme", "yield", "shipped", "gross", "char", "ecc",
         "coverage", "ms/die", "$/bit"],
        rows,
    ))
    if len(summaries) == 1:
        classified = summaries[0][2].classified
        if classified:
            print("diagnosis: " + ", ".join(
                f"{kind}={count}" for kind, count in sorted(classified.items())
            ))

    if args.check:
        # Determinism gates on a reduced wafer: the vectorized engine must
        # match the per-die reference loop bit for bit, and a same-seed
        # rebuild must reproduce the result exactly.
        check_config = _dataclasses.replace(
            base, scheme=schemes[0], dies=min(args.dies, 256)
        )
        wafer = build_wafer(check_config)
        vectorized = run_wafer(wafer, engine="vectorized")
        reference = run_wafer(wafer, engine="reference")
        rebuilt = run_wafer(build_wafer(check_config), engine="vectorized")
        if not vectorized.equals(reference):
            print("FAIL: vectorized wafer flow diverged from the per-die "
                  "reference loop")
            raise SystemExit(1)
        if not vectorized.equals(rebuilt):
            print("FAIL: same-seed wafer rebuild did not reproduce the run")
            raise SystemExit(1)
        print(f"PASS: vectorized == per-die reference and same-seed rebuild "
              f"is bit-identical ({check_config.dies} dies, "
              f"{schemes[0]} scheme)")


def _cmd_list(args) -> None:
    print("available experiments:")
    for name, experiment in sorted(EXPERIMENTS.items()):
        print(f"  {name:<10} {experiment.description}")


# ---------------------------------------------------------------------------
# Per-command argument registration hooks
# ---------------------------------------------------------------------------
def _args_fig10(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--bit", type=int, choices=(0, 1), default=1,
        help="stored value to simulate (default 1)",
    )


def _args_obs_outputs(sub: argparse.ArgumentParser) -> None:
    """The shared ``--metrics-out/--trace-out/--profile`` artifact flags."""
    sub.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry snapshot to PATH as JSON",
    )
    sub.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the trace-event ring buffer to PATH as JSONL",
    )
    _args_profile(sub)


def _args_profile(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--profile", action="store_true",
        help="include wall-clock profile timings in --metrics-out "
        "(non-deterministic; omitted by default)",
    )


def _args_scheme_seed(sub: argparse.ArgumentParser, seed_help: str) -> None:
    sub.add_argument(
        "--scheme", default="nondestructive",
        choices=("conventional", "destructive", "nondestructive"),
        help="sensing scheme under test (default nondestructive)",
    )
    sub.add_argument(
        "--seed", type=int, default=2010, help=seed_help,
    )


def _args_faults(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--rates", type=float, nargs="+",
        default=[1e-4, 1e-3, 5e-3],
        help="hard-fault rates to sweep (default 1e-4 1e-3 5e-3)",
    )
    sub.add_argument(
        "--bits", type=int, default=16384,
        help="array size in cells (default 16384, the paper's chip)",
    )
    _args_scheme_seed(sub, "campaign RNG seed (default 2010)")
    sub.add_argument(
        "--attempts", type=int, default=3,
        help="retry-policy attempt budget per read (default 3)",
    )
    sub.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless every correctable fault recovered "
        "and nothing escaped",
    )
    _args_obs_outputs(sub)


def _args_stats(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--bits", type=int, default=2304,
        help="array size in cells (default 2304 = 32 SECDED words)",
    )
    _args_scheme_seed(sub, "workload RNG seed (default 2010)")
    sub.add_argument(
        "--rate", type=float, default=1e-3,
        help="hard-fault rate injected before reading (default 1e-3)",
    )
    _args_obs_outputs(sub)


def _args_export(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--directory", default="figure_csv",
        help="output directory (default ./figure_csv)",
    )


def _args_serve(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--scheme", default="nondestructive",
        choices=("destructive", "nondestructive"),
        help="sensing scheme whose read time occupies a bank "
        "(default nondestructive)",
    )
    sub.add_argument(
        "--policy", default="fcfs",
        choices=("fcfs", "read-priority", "batch"),
        help="bank scheduling policy (default fcfs)",
    )
    sub.add_argument(
        "--rate", type=float, default=5e7,
        help="mean arrival rate in requests/s (default 5e7)",
    )
    sub.add_argument(
        "--requests", type=int, default=4096,
        help="requests to generate (ignored with --trace-in; default 4096)",
    )
    sub.add_argument(
        "--banks", type=int, default=4,
        help="independent banks (default 4; ignored with --topology, "
        "which defines the bank hierarchy)",
    )
    sub.add_argument(
        "--topology", metavar="CxRxB", default=None,
        help="shard the run across a channels x ranks x banks hierarchy "
        "(e.g. 4x2x4) with per-channel controllers on independent "
        "engines (default: one flat controller)",
    )
    sub.add_argument(
        "--rows", type=int, default=512,
        help="rows (words) per bank in the topology address space "
        "(default 512)",
    )
    sub.add_argument(
        "--interleave", default="channel-striped",
        choices=("row-major", "bank-xor", "channel-striped"),
        help="address-interleaving scheme mapping a logical address to "
        "(channel, rank, bank, row) (default channel-striped)",
    )
    sub.add_argument(
        "--shards", type=int, default=1,
        help="worker processes for the topology driver; 1 runs the "
        "sequential reference (the merged report is bit-identical "
        "either way; default 1)",
    )
    sub.add_argument(
        "--workload", default="poisson", choices=("poisson", "bursty"),
        help="arrival process (default poisson)",
    )
    sub.add_argument(
        "--addressing", default="uniform", choices=("uniform", "zipfian"),
        help="address popularity (default uniform)",
    )
    sub.add_argument(
        "--addresses", type=int, default=None,
        help="logical address-space size (default 2048, or the full "
        "topology capacity with --topology)",
    )
    sub.add_argument(
        "--write-fraction", type=float, default=0.0,
        help="fraction of requests that are writes (default 0)",
    )
    sub.add_argument(
        "--cache", type=int, default=0,
        help="read-cache capacity in words; 0 disables (default 0)",
    )
    sub.add_argument(
        "--backed", action="store_true",
        help="run reads through the real recovery ladder on the 16kb chip",
    )
    sub.add_argument(
        "--batch-limit", type=int, default=8,
        help="max reads coalesced per bank occupancy under the batch "
        "policy (default 8)",
    )
    sub.add_argument(
        "--batch-extra-fraction", type=float, default=0.4,
        help="extra bank-occupancy cost per additional coalesced read, "
        "within [0, 1] (default 0.4)",
    )
    sub.add_argument(
        "--backend-window", type=int, default=1,
        help="backed-serving accumulation window for the fcfs and "
        "read-priority policies; 1 keeps the historical scalar order "
        "(default 1)",
    )
    sub.add_argument(
        "--backend-mode", default="batched", choices=("batched", "scalar"),
        help="serve backed read groups through the vectorized ladder "
        "(batched) or word-by-word (scalar reference path; bit-identical "
        "results, default batched)",
    )
    sub.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="hard-fault rate injected into the backed array (implies "
        "--backed; default 0)",
    )
    sub.add_argument(
        "--seed", type=int, default=2010,
        help="workload RNG seed (default 2010)",
    )
    sub.add_argument(
        "--adaptive", action="store_true",
        help="close the loop: an online controller watches windowed obs "
        "signals and adapts retry policy, scrub, cache, and admission "
        "to defend the SLO (implies --backed)",
    )
    sub.add_argument(
        "--drift", default="none",
        choices=("none", "temperature-ramp", "field-window",
                 "rolloff-shift", "sense-step"),
        help="inject a mid-trace drift scenario over the middle half of "
        "the stream (implies --backed; default none)",
    )
    sub.add_argument(
        "--drift-offset-mv", type=float, default=6.0,
        help="peak sense-amp offset the scenario applies in mV (default 6)",
    )
    sub.add_argument(
        "--drift-flip-fraction", type=float, default=0.0,
        help="fraction of stored cells a field-window strike flips "
        "(default 0)",
    )
    sub.add_argument(
        "--slo-p99-ns", type=float, default=1000.0,
        help="p99 read-latency SLO the adaptive controller defends, in ns "
        "(default 1000)",
    )
    sub.add_argument(
        "--guardband", type=float, default=0.75,
        help="fraction of the SLO at which the controller starts acting, "
        "within (0, 1] (default 0.75)",
    )
    sub.add_argument(
        "--control-interval-ns", type=float, default=250.0,
        help="simulated time between control ticks in ns (default 250)",
    )
    sub.add_argument(
        "--window", type=int, default=96,
        help="completed reads in the controller's rolling latency window "
        "(default 96)",
    )
    sub.add_argument(
        "--burst", type=float, default=32.0,
        help="admission token-bucket depth once shedding engages "
        "(default 32)",
    )
    sub.add_argument(
        "--low-priority-reserve", type=float, default=4.0,
        help="tokens held back from priority>0 requests so the background "
        "tier sheds first; must stay below --burst (default 4)",
    )
    sub.add_argument(
        "--shed-depth", type=int, default=256,
        help="per-bank queue depth at which arrivals are shed regardless "
        "of tokens (default 256)",
    )
    sub.add_argument(
        "--low-priority-fraction", type=float, default=0.0,
        help="fraction of generated requests marked priority 1 "
        "(shed-first background tier; default 0)",
    )
    sub.add_argument(
        "--failures", default="none",
        choices=("none", "controller-stall", "bank-offline",
                 "sense-lockup", "channel-outage"),
        help="inject a deterministic structural failure scenario whose "
        "geometry is drawn from the reserved (seed, 7) stream "
        "(channel-outage requires --topology; the other kinds run on "
        "the flat controller; default none)",
    )
    sub.add_argument(
        "--deadline-ns", type=float, default=0.0,
        help="deadline slack in ns added to every generated arrival "
        "time; service must start before it or the request is dropped "
        "as timed out (0 disables; default 0)",
    )
    sub.add_argument(
        "--request-retries", type=int, default=0,
        help="controller-level retry budget for reads whose backend "
        "word failed, with exponential backoff (default 0)",
    )
    sub.add_argument(
        "--retry-backoff-ns", type=float, default=0.0,
        help="base controller retry backoff in ns, doubled per retry "
        "already spent (default 0)",
    )
    sub.add_argument(
        "--hedge-after-ns", type=float, default=0.0,
        help="clone a still-queued read to the next bank after this "
        "many ns; the first copy to finish wins (0 disables; default 0)",
    )
    sub.add_argument(
        "--stall-factor", type=float, default=8.0,
        help="latency inflation a controller-stall scenario applies "
        "while active (default 8)",
    )
    sub.add_argument(
        "--trace-in", metavar="PATH", default=None,
        help="replay a saved JSONL request trace instead of generating",
    )
    sub.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="save the request stream as a JSONL trace",
    )
    sub.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write service.* metrics (repro.obs snapshot) to PATH as JSON",
    )
    _args_profile(sub)
    sub.add_argument(
        "--check", action="store_true",
        help="verify trace replay and same-seed regeneration reproduce the "
        "run bit-for-bit; exit nonzero otherwise",
    )


def _args_chaos(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--requests", type=int, default=400,
        help="requests per chaos scenario (default 400)",
    )
    sub.add_argument(
        "--bits", type=int, default=2304,
        help="backed-array size in cells per controller "
        "(default 2304 = 32 SECDED words)",
    )
    sub.add_argument(
        "--scheme", default="nondestructive",
        choices=("destructive", "nondestructive"),
        help="sensing scheme under chaos (default nondestructive)",
    )
    sub.add_argument(
        "--seed", type=int, default=2010,
        help="workload and failure-geometry RNG seed (default 2010)",
    )
    sub.add_argument(
        "--availability-floor", type=float, default=0.5,
        help="minimum fraction of requests every scenario must still "
        "serve (default 0.5)",
    )
    sub.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless every scenario conserves requests, "
        "escapes nothing silently, restarts bit-exactly, and clears "
        "the availability floor",
    )


def _args_prodtest(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--dies", type=int, default=512,
        help="dies per wafer (default 512)",
    )
    sub.add_argument(
        "--scheme", default="all",
        choices=("conventional", "destructive", "nondestructive", "all"),
        help="sensing scheme under test, or all three (default all)",
    )
    sub.add_argument(
        "--march", default="march-1t1j",
        choices=("mats+", "march-c-", "march-1t1j"),
        help="march algorithm (default march-1t1j, the disturb-aware "
        "STT-RAM variant)",
    )
    sub.add_argument(
        "--seed", type=int, default=2010,
        help="prodtest-stream RNG seed (default 2010)",
    )
    sub.add_argument(
        "--variation-scale", type=float, default=1.0,
        help="within-die variation scale (default 1.0)",
    )
    sub.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write prodtest.* gauges (repro.obs snapshot) to PATH as JSON",
    )
    _args_profile(sub)
    sub.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless the vectorized wafer flow matches the "
        "per-die reference loop bit for bit and a same-seed rebuild "
        "reproduces it exactly",
    )


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One CLI subcommand: its runner, description, and argument hook."""

    run: Callable
    description: str
    register: Optional[Callable[[argparse.ArgumentParser], None]] = None


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment(_cmd_table1, "Table I: device parameters and operating points"),
    "table2": Experiment(_cmd_table2, "Table II: robustness windows"),
    "fig2": Experiment(_cmd_fig2, "Fig. 2: MTJ R–I characteristics"),
    "fig6": Experiment(_cmd_fig6, "Fig. 6: sense margin vs β"),
    "fig7": Experiment(_cmd_fig7, "Fig. 7: robustness vs ΔR_TR"),
    "fig8": Experiment(_cmd_fig8, "Fig. 8: robustness vs Δα"),
    "fig9": Experiment(_cmd_fig9, "Fig. 9: read timing diagram"),
    "fig10": Experiment(_cmd_fig10, "Fig. 10: read transient simulation", _args_fig10),
    "fig11": Experiment(_cmd_fig11, "Fig. 11: 16kb test-chip yield"),
    "latency": Experiment(_cmd_latency, "§V: read-latency comparison"),
    "energy": Experiment(_cmd_energy, "§V: read-energy comparison"),
    "corners": Experiment(_cmd_corners, "extension: temperature corner map"),
    "disturb": Experiment(_cmd_disturb, "extension: read-disturb budget"),
    "trim": Experiment(_cmd_trim, "extension: test-stage β trim vs divider skew"),
    "capacity": Experiment(_cmd_capacity, "extension: capacity-scaling projection"),
    "sensitivity": Experiment(_cmd_sensitivity, "extension: margin-sensitivity ranking"),
    "ber": Experiment(_cmd_ber, "extension: per-read error budget"),
    "faults": Experiment(_cmd_faults, "extension: fault-injection campaign + recovery ladder", _args_faults),
    "stats": Experiment(_cmd_stats, "observability: instrumented read workload + metrics dump", _args_stats),
    "serve": Experiment(_cmd_serve, "service: trace-driven memory-controller simulation", _args_serve),
    "chaos": Experiment(_cmd_chaos, "resilience: structural-failure chaos campaign + recovery gates", _args_chaos),
    "prodtest": Experiment(_cmd_prodtest, "production: wafer-scale march test + trim + yield/cost curves", _args_prodtest),
    "export": Experiment(_cmd_export, "write every figure series to CSV", _args_export),
    "list": Experiment(_cmd_list, "list available experiments"),
}


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the DATE 2010 nondestructive "
        "self-reference STT-RAM paper.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}",
    )
    subparsers = parser.add_subparsers(dest="experiment", required=True)
    for name, experiment in EXPERIMENTS.items():
        sub = subparsers.add_parser(name, help=experiment.description)
        if experiment.register is not None:
            experiment.register(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    EXPERIMENTS[args.experiment].run(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
