"""Read-latency model (paper §V: "the whole read operation can complete in
about 15 ns" for the nondestructive scheme; the destructive scheme pays two
extra write pulses and a slower second read).

Phase durations are computed from the circuit models:

* read settle times come from the bit-line RC plus — only when the phase
  samples onto a capacitor — the sampling-capacitor charge constant.  The
  nondestructive second read drives the tens-of-MΩ divider instead of a
  capacitor, which is why it settles faster (the paper's §V argument);
* write phases take the 4 ns switching pulse plus driver setup;
* word-line activation, sense and latch overheads are fixed-cost
  parameters of :class:`TimingConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.storage import SampleCapacitor
from repro.core.cell import Cell1T1J
from repro.core.retry import RetryPolicy
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.registry import LATENCY_NS_EDGES
from repro.timing.phases import PhaseSchedule, destructive_schedule, nondestructive_schedule

__all__ = [
    "TimingConfig",
    "LatencyBreakdown",
    "RetryLatencyBreakdown",
    "nondestructive_read_latency",
    "destructive_read_latency",
    "retry_read_latency",
    "latency_comparison",
]


def _observe_latency(scheme: str, total_seconds: float) -> None:
    """Record one modelled read latency [ns] (no-op when obs is off)."""
    if _obs.active():
        _obs.get_registry().observe(
            "timing.read_latency_ns",
            total_seconds * 1e9,
            edges=LATENCY_NS_EDGES,
            scheme=scheme,
        )


@dataclasses.dataclass(frozen=True)
class TimingConfig:
    """Fixed-cost and environment parameters of the latency model.

    Defaults are chosen for a 0.13 µm design and land the nondestructive
    read at the paper's ≈15 ns.
    """

    t_wordline: float = 2.0e-9      #: decode + word-line rise [s]
    t_sense: float = 1.5e-9         #: sense-amplifier resolve [s]
    t_latch: float = 1.0e-9         #: output latch [s]
    t_write_setup: float = 1.0e-9   #: write-driver turn-on [s]
    settle_tolerance: float = 0.001  #: read settles to 0.1%
    bitline: BitlineModel = PAPER_BITLINE
    capacitor: SampleCapacitor = dataclasses.field(
        default_factory=lambda: SampleCapacitor(capacitance=100e-15, switch_resistance=5e3)
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.settle_tolerance < 1.0:
            raise ConfigurationError("settle_tolerance must be in (0, 1)")


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """Total latency plus the underlying phase schedule."""

    scheme: str
    schedule: PhaseSchedule
    total: float

    def phase_duration(self, name: str) -> float:
        """Duration of one phase [s]."""
        return self.schedule.phase(name).duration


def _read_settle(
    cell: Cell1T1J,
    current: float,
    config: TimingConfig,
    sampling: bool,
    state: MTJState,
) -> float:
    """Settle time of one read phase: the worst-case (slower) state is the
    stored one; sampling phases additionally charge the capacitor."""
    source_resistance = cell.series_resistance(current, state)
    extra_cap = config.capacitor.capacitance if sampling else 0.0
    return config.bitline.settling_time(
        source_resistance=source_resistance,
        extra_capacitance=extra_cap,
        tolerance=config.settle_tolerance,
        switch_resistance=config.capacitor.switch_resistance if sampling else None,
    )


def nondestructive_read_latency(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta: float = 2.13,
    config: Optional[TimingConfig] = None,
) -> LatencyBreakdown:
    """Latency of one nondestructive read.

    First read samples onto C1 (capacitor charge included); second read
    drives only the high-impedance divider (no extra bit-line load — "a high
    impedance voltage divider does not change the Elmore delay of BL").
    Settle times use the high state (larger resistance, slower).
    """
    if config is None:
        config = TimingConfig()
    i_read1 = i_read2 / beta
    t_read1 = _read_settle(cell, i_read1, config, sampling=True, state=MTJState.ANTIPARALLEL)
    t_read2 = _read_settle(cell, i_read2, config, sampling=False, state=MTJState.ANTIPARALLEL)
    schedule = nondestructive_schedule(
        i_read1=i_read1,
        i_read2=i_read2,
        t_wordline=config.t_wordline,
        t_first_read=t_read1,
        t_second_read=t_read2,
        t_sense=config.t_sense,
        t_latch=config.t_latch,
    )
    _observe_latency(schedule.scheme, schedule.total_duration)
    return LatencyBreakdown(schedule.scheme, schedule, schedule.total_duration)


def destructive_read_latency(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta: float = 1.22,
    config: Optional[TimingConfig] = None,
    write_overdrive: float = 1.5,
) -> LatencyBreakdown:
    """Latency of one destructive self-reference read.

    Both reads sample onto capacitors (C1/C2 hang on the bit line), and the
    erase and write-back pulses each cost driver setup plus the 4 ns
    switching pulse.
    """
    if config is None:
        config = TimingConfig()
    params = cell.mtj.params
    i_read1 = i_read2 / beta
    i_write = write_overdrive * params.i_c0
    t_write = config.t_write_setup + params.pulse_width_write
    t_read1 = _read_settle(cell, i_read1, config, sampling=True, state=MTJState.ANTIPARALLEL)
    # Second read senses the erased (low) state but C2 still loads the line;
    # use the low state's (smaller) resistance for its settle.
    t_read2 = _read_settle(cell, i_read2, config, sampling=True, state=MTJState.PARALLEL)
    schedule = destructive_schedule(
        i_read1=i_read1,
        i_read2=i_read2,
        i_write=i_write,
        t_wordline=config.t_wordline,
        t_first_read=t_read1,
        t_erase=t_write,
        t_second_read=t_read2,
        t_sense=config.t_sense,
        t_latch=config.t_latch,
        t_write_back=t_write,
    )
    _observe_latency(schedule.scheme, schedule.total_duration)
    return LatencyBreakdown(schedule.scheme, schedule, schedule.total_duration)


@dataclasses.dataclass(frozen=True)
class RetryLatencyBreakdown:
    """Latency of a read that needed ``attempts`` sensing passes.

    Each pass replays the full phase schedule; between passes the retry
    policy's exponential backoff elapses in simulated time.  The breakdown
    keeps the per-attempt split so a controller model can report how much
    of a retried access was sensing versus waiting.
    """

    scheme: str
    base: LatencyBreakdown
    attempts: int
    backoff: float  #: total simulated backoff [s]
    total: float    #: attempts × base.total + backoff [s]

    @property
    def sensing(self) -> float:
        """Time spent actually reading (backoff excluded) [s]."""
        return self.total - self.backoff

    @property
    def slowdown(self) -> float:
        """Total latency relative to a clean single read."""
        return self.total / self.base.total


def retry_read_latency(
    breakdown: LatencyBreakdown,
    policy: RetryPolicy,
    attempts: int,
) -> RetryLatencyBreakdown:
    """Latency of a read retried ``attempts`` times under ``policy``.

    Every attempt pays the full single-read schedule (the sense amplifier
    cannot shortcut a re-read), and attempts after the first wait out the
    policy's backoff first.  ``attempts`` is typically the worst per-bit
    attempt count of a word read
    (:attr:`~repro.ecc.array.EccReadResult.attempts`).
    """
    if attempts < 1:
        raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
    if attempts > policy.max_attempts:
        raise ConfigurationError(
            f"attempts {attempts} exceeds the policy's max_attempts "
            f"{policy.max_attempts}"
        )
    backoff = policy.total_backoff(attempts) * 1e-9
    total = attempts * breakdown.total + backoff
    _observe_latency(breakdown.scheme, total)
    return RetryLatencyBreakdown(
        scheme=breakdown.scheme,
        base=breakdown,
        attempts=attempts,
        backoff=backoff,
        total=total,
    )


def latency_comparison(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta_destructive: float = 1.22,
    beta_nondestructive: float = 2.13,
    config: Optional[TimingConfig] = None,
):
    """(destructive, nondestructive, speedup) — the paper's §V comparison."""
    destructive = destructive_read_latency(cell, i_read2, beta_destructive, config)
    nondestructive = nondestructive_read_latency(cell, i_read2, beta_nondestructive, config)
    speedup = destructive.total / nondestructive.total
    return destructive, nondestructive, speedup
