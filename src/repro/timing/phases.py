"""Read-operation phase schedules (paper Fig. 9).

A read decomposes into named phases with control-signal states; the latency
model assigns durations and the waveform simulator drives switches from the
schedule.  Control signals follow the paper's Fig. 9: ``SLT1``/``SLT2``
select which storage path the bit line drives, ``SenEn`` triggers the sense
amplifier, ``Data_latch`` captures the output.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["Phase", "PhaseSchedule", "nondestructive_schedule", "destructive_schedule"]


@dataclasses.dataclass(frozen=True)
class Phase:
    """One named interval of a read operation.

    Attributes
    ----------
    name:
        Phase identifier (``first_read``, ``erase``, …).
    duration:
        Length [s].
    read_current:
        Bit-line read current during the phase [A] (0 for non-read phases).
    write_current:
        Signed cell write current during the phase [A] (erase/write-back).
    signals:
        Control-signal levels during the phase (``SLT1``, ``SLT2``,
        ``SenEn``, ``Data_latch``, ``WL``).
    """

    name: str
    duration: float
    read_current: float = 0.0
    write_current: float = 0.0
    signals: Dict[str, bool] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ConfigurationError(f"phase {self.name}: negative duration")


@dataclasses.dataclass(frozen=True)
class PhaseSchedule:
    """An ordered list of phases forming one full operation."""

    scheme: str
    phases: List[Phase]

    @property
    def total_duration(self) -> float:
        """End-to-end operation latency [s]."""
        return sum(phase.duration for phase in self.phases)

    def start_of(self, name: str) -> float:
        """Start time of the first phase with the given name [s]."""
        t = 0.0
        for phase in self.phases:
            if phase.name == name:
                return t
            t += phase.duration
        raise KeyError(f"no phase named {name!r} in {self.scheme} schedule")

    def end_of(self, name: str) -> float:
        """End time of the first phase with the given name [s]."""
        return self.start_of(name) + self.phase(name).duration

    def phase(self, name: str) -> Phase:
        """The first phase with the given name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in {self.scheme} schedule")

    def signal_intervals(self, signal: str) -> List[tuple]:
        """``(start, end)`` intervals during which ``signal`` is asserted —
        the rows of the paper's Fig. 9 timing diagram."""
        intervals = []
        t = 0.0
        active_start: Optional[float] = None
        for phase in self.phases:
            asserted = phase.signals.get(signal, False)
            if asserted and active_start is None:
                active_start = t
            if not asserted and active_start is not None:
                intervals.append((active_start, t))
                active_start = None
            t += phase.duration
        if active_start is not None:
            intervals.append((active_start, t))
        return intervals


def nondestructive_schedule(
    i_read1: float,
    i_read2: float,
    t_wordline: float,
    t_first_read: float,
    t_second_read: float,
    t_sense: float,
    t_latch: float,
) -> PhaseSchedule:
    """Fig. 9's control sequence: WL up, first read into C1 (SLT1), second
    read into the divider (SLT2), sense (SenEn), latch (Data_latch)."""
    return PhaseSchedule(
        scheme="nondestructive self-reference",
        phases=[
            Phase("wordline", t_wordline, signals={"WL": True}),
            Phase(
                "first_read", t_first_read, read_current=i_read1,
                signals={"WL": True, "SLT1": True},
            ),
            Phase(
                "second_read", t_second_read, read_current=i_read2,
                signals={"WL": True, "SLT2": True},
            ),
            Phase(
                "sense", t_sense, read_current=i_read2,
                signals={"WL": True, "SLT2": True, "SenEn": True},
            ),
            Phase("latch", t_latch, signals={"Data_latch": True}),
        ],
    )


def destructive_schedule(
    i_read1: float,
    i_read2: float,
    i_write: float,
    t_wordline: float,
    t_first_read: float,
    t_erase: float,
    t_second_read: float,
    t_sense: float,
    t_latch: float,
    t_write_back: float,
) -> PhaseSchedule:
    """The prior-art sequence (paper Fig. 3): the erase and write-back write
    pulses bracket the second read."""
    return PhaseSchedule(
        scheme="destructive self-reference",
        phases=[
            Phase("wordline", t_wordline, signals={"WL": True}),
            Phase(
                "first_read", t_first_read, read_current=i_read1,
                signals={"WL": True, "SLT1": True},
            ),
            Phase("erase", t_erase, write_current=i_write, signals={"WL": True}),
            Phase(
                "second_read", t_second_read, read_current=i_read2,
                signals={"WL": True, "SLT2": True},
            ),
            Phase(
                "sense", t_sense, read_current=i_read2,
                signals={"WL": True, "SLT2": True, "SenEn": True},
            ),
            Phase("latch", t_latch, signals={"Data_latch": True}),
            Phase(
                "write_back", t_write_back, write_current=-i_write,
                signals={"WL": True},
            ),
        ],
    )
