"""Transient simulation of the *destructive* self-reference read (paper
Fig. 3 circuit) — the waveform-level counterpart of
:func:`repro.timing.waveforms.simulate_nondestructive_read`.

The netlist carries both sampling paths (SLT1 + C1, SLT2 + C2).  The erase
and write-back phases drive the write current through the cell; the cell
resistance element tracks the *state trajectory* of the operation
(original state → erased "0" → restored state), switching at the phase
boundaries where the write pulses complete.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.mna import Circuit, TransientResult
from repro.circuit.sense_amp import SenseAmplifier
from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError
from repro.timing.latency import TimingConfig, destructive_read_latency
from repro.timing.phases import PhaseSchedule

__all__ = ["DestructiveReadWaveforms", "simulate_destructive_read"]


@dataclasses.dataclass(frozen=True)
class DestructiveReadWaveforms:
    """Waveforms of one simulated destructive read."""

    schedule: PhaseSchedule
    transient: TransientResult
    v_bl: np.ndarray
    v_c1: np.ndarray  #: first-read sample (the stored value's voltage)
    v_c2: np.ndarray  #: second-read sample (the erased-state reference)
    sensed_bit: Optional[int]
    sense_differential: float
    total_duration: float

    @property
    def times(self) -> np.ndarray:
        """Simulation time axis [s]."""
        return self.transient.times


def simulate_destructive_read(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta: float = 1.22,
    sense_amp: Optional[SenseAmplifier] = None,
    config: Optional[TimingConfig] = None,
    bitline: Optional[BitlineModel] = None,
    dt: float = 20e-12,
) -> DestructiveReadWaveforms:
    """Transient-simulate one full destructive self-reference read.

    The caller's cell is *not* mutated (the state trajectory is emulated in
    the netlist); use :class:`repro.core.destructive.DestructiveSelfReference`
    for the behavioural read with real state effects.
    """
    if dt <= 0.0:
        raise ConfigurationError("dt must be positive")
    if sense_amp is None:
        sense_amp = SenseAmplifier()
    if config is None:
        config = TimingConfig()
    if bitline is None:
        bitline = PAPER_BITLINE

    original_state = cell.state
    breakdown = destructive_read_latency(cell, i_read2, beta, config)
    schedule = breakdown.schedule

    erase_end = schedule.end_of("erase")
    write_back_end = schedule.end_of("write_back")

    def state_at(time: float) -> MTJState:
        """The cell's state trajectory through the operation."""
        if time < erase_end:
            return original_state
        if time < write_back_end:
            return MTJState.PARALLEL  # erased to "0"
        return original_state  # written back

    phase_starts = []
    t = 0.0
    for phase in schedule.phases:
        phase_starts.append((t, t + phase.duration, phase))
        t += phase.duration

    def phase_at(time: float):
        for start, end, phase in phase_starts:
            if start <= time < end:
                return phase
        return phase_starts[-1][2]

    def cell_current(time: float) -> float:
        phase = phase_at(time)
        if phase.read_current:
            return phase.read_current
        if phase.write_current:
            return abs(phase.write_current)
        return 1e-9

    def bitline_current(time: float) -> float:
        phase = phase_at(time)
        return phase.read_current + abs(phase.write_current)

    def cell_resistance(time: float) -> float:
        return cell.series_resistance(cell_current(time), state_at(time))

    def slt1_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT1", False)

    def slt2_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT2", False)

    capacitor = config.capacitor
    circuit = Circuit()
    circuit.add_current_source("gnd", "BL", bitline_current, name="I_cell")
    circuit.add_resistor("BL", "gnd", cell_resistance, name="R_cell")
    circuit.add_capacitor("BL", "gnd", bitline.total_capacitance, name="C_BL")
    circuit.add_switch("BL", "C1", slt1_closed, r_on=capacitor.switch_resistance, name="SLT1")
    circuit.add_capacitor("C1", "gnd", capacitor.capacitance, name="C1")
    circuit.add_switch("BL", "C2", slt2_closed, r_on=capacitor.switch_resistance, name="SLT2")
    circuit.add_capacitor("C2", "gnd", capacitor.capacitance, name="C2")

    transient = circuit.solve_transient(schedule.total_duration, dt)

    sense_time = schedule.end_of("sense") - dt
    v_c1 = transient.at("C1", sense_time)
    v_c2 = transient.at("C2", sense_time)
    bit = sense_amp.compare_bit(v_c1, v_c2)

    return DestructiveReadWaveforms(
        schedule=schedule,
        transient=transient,
        v_bl=transient["BL"],
        v_c1=transient["C1"],
        v_c2=transient["C2"],
        sensed_bit=bit,
        sense_differential=v_c1 - v_c2,
        total_duration=schedule.total_duration,
    )
