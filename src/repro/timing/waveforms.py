"""Transient simulation of the nondestructive read (paper Figs. 9–10).

Builds the Fig. 5 netlist — read-current source, cell resistance, bit-line
capacitance, SLT1 + C1 sampling path, SLT2 + voltage divider — drives the
switches from the Fig. 9 phase schedule, and integrates it with the
backward-Euler MNA solver.  The result is the Fig. 10 waveform set:
``V_BL``, ``V_C1`` (stored first read), ``V_BO`` (divider output), and the
latched decision, completing in about 15 ns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.divider import VoltageDivider
from repro.circuit.mna import Circuit, TransientResult
from repro.circuit.sense_amp import SenseAmplifier
from repro.circuit.storage import SampleCapacitor
from repro.core.cell import Cell1T1J
from repro.errors import ConfigurationError
from repro.timing.latency import TimingConfig, nondestructive_read_latency
from repro.timing.phases import PhaseSchedule

__all__ = ["ControlSignals", "ReadWaveforms", "simulate_nondestructive_read"]


@dataclasses.dataclass(frozen=True)
class ControlSignals:
    """Digitized control waveforms (the rows of paper Fig. 9)."""

    times: np.ndarray
    levels: Dict[str, np.ndarray]  #: signal name → boolean array

    def __getitem__(self, signal: str) -> np.ndarray:
        return self.levels[signal]


@dataclasses.dataclass(frozen=True)
class ReadWaveforms:
    """Analog + digital waveforms of one simulated read (paper Fig. 10)."""

    schedule: PhaseSchedule
    transient: TransientResult
    controls: ControlSignals
    v_bl: np.ndarray   #: bit-line voltage [V]
    v_c1: np.ndarray   #: sampled first-read voltage on C1 [V]
    v_bo: np.ndarray   #: divider output [V]
    sensed_bit: Optional[int]
    sense_differential: float  #: V_C1 - V_BO at the sense instant [V]
    total_duration: float

    @property
    def times(self) -> np.ndarray:
        """Simulation time axis [s]."""
        return self.transient.times


def _phase_lookup(schedule: PhaseSchedule):
    """Return ``phase_at(t)`` resolving which phase a time instant lies in."""
    starts = []
    t = 0.0
    for phase in schedule.phases:
        starts.append((t, t + phase.duration, phase))
        t += phase.duration
    def phase_at(time: float):
        for start, end, phase in starts:
            if start <= time < end:
                return phase
        return starts[-1][2]
    return phase_at


def simulate_nondestructive_read(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta: float = 2.13,
    divider: Optional[VoltageDivider] = None,
    sense_amp: Optional[SenseAmplifier] = None,
    config: Optional[TimingConfig] = None,
    bitline: Optional[BitlineModel] = None,
    dt: float = 20e-12,
) -> ReadWaveforms:
    """Transient-simulate one full nondestructive read of ``cell``.

    The cell keeps its stored state throughout (that is the point of the
    scheme); the cell resistance element tracks the phase read current.
    The sense decision is taken at the end of the ``sense`` phase from the
    simulated ``V_C1``/``V_BO``.
    """
    if dt <= 0.0:
        raise ConfigurationError("dt must be positive")
    if divider is None:
        divider = VoltageDivider(ratio=0.5)
    if sense_amp is None:
        sense_amp = SenseAmplifier()
    if config is None:
        config = TimingConfig()
    if bitline is None:
        bitline = PAPER_BITLINE

    breakdown = nondestructive_read_latency(cell, i_read2, beta, config)
    schedule = breakdown.schedule
    phase_at = _phase_lookup(schedule)

    def read_current(time: float) -> float:
        return phase_at(time).read_current

    def cell_resistance(time: float) -> float:
        current = phase_at(time).read_current
        return cell.series_resistance(max(current, 1e-9))

    def slt1_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT1", False)

    def slt2_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT2", False)

    capacitor = config.capacitor
    circuit = Circuit()
    circuit.add_current_source("gnd", "BL", read_current, name="I_read")
    circuit.add_resistor("BL", "gnd", cell_resistance, name="R_cell")
    circuit.add_capacitor("BL", "gnd", bitline.total_capacitance, name="C_BL")
    circuit.add_switch(
        "BL", "C1", slt1_closed, r_on=capacitor.switch_resistance, name="SLT1"
    )
    circuit.add_capacitor("C1", "gnd", capacitor.capacitance, name="C1")
    circuit.add_switch(
        "BL", "DIV", slt2_closed, r_on=capacitor.switch_resistance, name="SLT2"
    )
    circuit.add_resistor("DIV", "BO", divider.upper_resistance, name="R_div_up")
    circuit.add_resistor("BO", "gnd", divider.lower_resistance, name="R_div_lo")

    transient = circuit.solve_transient(schedule.total_duration, dt)

    sense_time = schedule.end_of("sense") - dt
    v_c1_sense = transient.at("C1", sense_time)
    v_bo_sense = transient.at("BO", sense_time)
    bit = sense_amp.compare_bit(v_c1_sense, v_bo_sense)

    levels = {
        signal: np.array(
            [phase_at(float(t)).signals.get(signal, False) for t in transient.times]
        )
        for signal in ("WL", "SLT1", "SLT2", "SenEn", "Data_latch")
    }
    controls = ControlSignals(times=transient.times, levels=levels)

    return ReadWaveforms(
        schedule=schedule,
        transient=transient,
        controls=controls,
        v_bl=transient["BL"],
        v_c1=transient["C1"],
        v_bo=transient["BO"],
        sensed_bit=bit,
        sense_differential=v_c1_sense - v_bo_sense,
        total_duration=schedule.total_duration,
    )
