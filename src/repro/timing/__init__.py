"""Read-operation timing, transient waveforms, energy, and the
non-volatility (power-failure) reliability model.

Reproduces paper Fig. 9 (control timing), Fig. 10 (transient simulation,
"the whole read operation can complete in about 15 ns"), and the §V latency
and power arguments: the nondestructive scheme removes both write pulses
and its second read does not charge a sampling capacitor on the bit line,
so it is much faster and cheaper than the destructive scheme.
"""

from repro.timing.energy import (
    EnergyBreakdown,
    RetryEnergyBreakdown,
    read_energy_comparison,
    retry_read_energy,
    scheme_read_energy,
)
from repro.timing.latency import (
    LatencyBreakdown,
    RetryLatencyBreakdown,
    TimingConfig,
    destructive_read_latency,
    latency_comparison,
    nondestructive_read_latency,
    retry_read_latency,
)
from repro.timing.phases import Phase, PhaseSchedule, destructive_schedule, nondestructive_schedule
from repro.timing.reliability import (
    PowerFailureModel,
    data_loss_probability_per_read,
    expected_data_loss_rate,
)
from repro.timing.physical import PhysicalReadWaveforms, simulate_physical_read
from repro.timing.destructive_waveforms import (
    DestructiveReadWaveforms,
    simulate_destructive_read,
)
from repro.timing.waveforms import ControlSignals, ReadWaveforms, simulate_nondestructive_read

__all__ = [
    "Phase",
    "PhaseSchedule",
    "nondestructive_schedule",
    "destructive_schedule",
    "TimingConfig",
    "LatencyBreakdown",
    "RetryLatencyBreakdown",
    "nondestructive_read_latency",
    "destructive_read_latency",
    "retry_read_latency",
    "latency_comparison",
    "EnergyBreakdown",
    "RetryEnergyBreakdown",
    "scheme_read_energy",
    "retry_read_energy",
    "read_energy_comparison",
    "ControlSignals",
    "ReadWaveforms",
    "simulate_nondestructive_read",
    "DestructiveReadWaveforms",
    "simulate_destructive_read",
    "PhysicalReadWaveforms",
    "simulate_physical_read",
    "PowerFailureModel",
    "data_loss_probability_per_read",
    "expected_data_loss_rate",
]
