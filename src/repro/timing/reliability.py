"""Non-volatility reliability under power failure (ablation A4).

The paper's qualitative reliability argument, quantified: during a
destructive self-reference read, the stored value exists only on a sampling
capacitor between the **erase** and the end of the **write-back**; a supply
loss inside that window destroys the bit ("The original MTJ state could be
lost if power is shut down before the write back operation completes").
The nondestructive scheme has no such window.

Model: power failures arrive as a Poisson process with rate λ; each read
exposes a vulnerability window ``T_v`` (destructive: erase start → write-back
end; nondestructive: 0).  Per-read loss probability is
``1 - exp(-λ T_v) ≈ λ T_v``; a workload issuing ``f`` reads/s loses data at
an expected rate ``f · λ · T_v``.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.timing.latency import LatencyBreakdown

__all__ = [
    "PowerFailureModel",
    "vulnerability_window",
    "data_loss_probability_per_read",
    "expected_data_loss_rate",
]


@dataclasses.dataclass(frozen=True)
class PowerFailureModel:
    """Poisson supply-failure model.

    Attributes
    ----------
    failure_rate:
        Expected failures per second (e.g. 1e-5 ≈ one brown-out per day).
    """

    failure_rate: float = 1e-5

    def __post_init__(self) -> None:
        if self.failure_rate < 0.0:
            raise ConfigurationError("failure_rate must be non-negative")


def vulnerability_window(breakdown: LatencyBreakdown) -> float:
    """The data-at-risk window of one read [s]: from erase start to
    write-back end; zero for schedules without write phases."""
    schedule = breakdown.schedule
    names = [phase.name for phase in schedule.phases]
    if "erase" not in names or "write_back" not in names:
        return 0.0
    return schedule.end_of("write_back") - schedule.start_of("erase")


def data_loss_probability_per_read(
    breakdown: LatencyBreakdown, model: PowerFailureModel
) -> float:
    """Probability that one read loses the stored bit to a power failure."""
    window = vulnerability_window(breakdown)
    return 1.0 - math.exp(-model.failure_rate * window)


def expected_data_loss_rate(
    breakdown: LatencyBreakdown,
    model: PowerFailureModel,
    reads_per_second: float,
) -> float:
    """Expected data-loss events per second for a read-intensive workload."""
    if reads_per_second < 0.0:
        raise ConfigurationError("reads_per_second must be non-negative")
    return reads_per_second * data_loss_probability_per_read(breakdown, model)
