"""Read-energy model (paper §V: "the total read latency and power
consumption are dramatically reduced" by removing the two write steps).

Energy per phase is the instantaneous cell dissipation times the phase
duration: ``I² (R_MTJ + R_TR) t`` for read phases and the write-driver
delivery for write phases.  Write pulses dominate — the write current is
~2.5–4× the read current and sees the cell resistance — which is why the
destructive scheme costs roughly an order of magnitude more energy per
read.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.core.cell import Cell1T1J
from repro.core.retry import RetryPolicy
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.registry import ENERGY_PJ_EDGES
from repro.timing.latency import (
    LatencyBreakdown,
    TimingConfig,
    destructive_read_latency,
    nondestructive_read_latency,
)

__all__ = [
    "EnergyBreakdown",
    "RetryEnergyBreakdown",
    "scheme_read_energy",
    "retry_read_energy",
    "read_energy_comparison",
]


def _observe_energy(scheme: str, total_joules: float) -> None:
    """Record one modelled read energy [pJ] (no-op when obs is off)."""
    if _obs.active():
        _obs.get_registry().observe(
            "timing.read_energy_pj",
            total_joules * 1e12,
            edges=ENERGY_PJ_EDGES,
            scheme=scheme,
        )


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase and total energy of one read operation."""

    scheme: str
    per_phase: Dict[str, float]  #: phase name → energy [J]
    total: float                 #: total operation energy [J]

    @property
    def write_energy(self) -> float:
        """Energy of write phases only (erase + write-back) [J]."""
        return sum(
            energy
            for name, energy in self.per_phase.items()
            if name in ("erase", "write_back")
        )

    @property
    def read_energy(self) -> float:
        """Energy of everything except write pulses [J]."""
        return self.total - self.write_energy


def _phase_energy(cell: Cell1T1J, phase, worst_state: MTJState) -> float:
    """Energy of one phase: read current through the cell, or the write
    pulse through the (mid-transition) cell resistance."""
    if phase.read_current > 0.0:
        resistance = cell.series_resistance(phase.read_current, worst_state)
        return phase.read_current**2 * resistance * phase.duration
    if phase.write_current != 0.0:
        current = abs(phase.write_current)
        # During switching the junction traverses both states; use the mean.
        r_mean = 0.5 * (
            cell.series_resistance(current, MTJState.PARALLEL)
            + cell.series_resistance(current, MTJState.ANTIPARALLEL)
        )
        return current**2 * r_mean * phase.duration
    return 0.0


def scheme_read_energy(
    cell: Cell1T1J,
    breakdown: LatencyBreakdown,
    worst_state: MTJState = MTJState.ANTIPARALLEL,
) -> EnergyBreakdown:
    """Energy of the operation described by a latency breakdown."""
    per_phase = {
        phase.name: _phase_energy(cell, phase, worst_state)
        for phase in breakdown.schedule.phases
    }
    total = sum(per_phase.values())
    _observe_energy(breakdown.scheme, total)
    return EnergyBreakdown(
        scheme=breakdown.scheme,
        per_phase=per_phase,
        total=total,
    )


@dataclasses.dataclass(frozen=True)
class RetryEnergyBreakdown:
    """Energy of a read retried under sense-current escalation.

    Read-phase dissipation grows with the *square* of the escalation
    factor (``I²R t``), so an aggressive escalation policy buys margin at a
    quadratic energy premium; write pulses (the destructive scheme's erase
    and write-back) are driven by the write driver and do not scale with
    the read current.
    """

    scheme: str
    base: EnergyBreakdown
    attempts: int
    per_attempt: Tuple[float, ...]  #: energy of each attempt [J]
    total: float                    #: energy summed over all attempts [J]

    @property
    def overhead(self) -> float:
        """Energy beyond the clean single read [J]."""
        return self.total - self.base.total

    @property
    def cost_factor(self) -> float:
        """Total energy relative to a clean single read."""
        return self.total / self.base.total


def retry_read_energy(
    base: EnergyBreakdown,
    policy: RetryPolicy,
    attempts: int,
) -> RetryEnergyBreakdown:
    """Energy of a read retried ``attempts`` times under ``policy``.

    Attempt ``k`` reads at ``policy.escalation_factor(k)`` times the design
    current, so its read energy scales with that factor squared while its
    write energy (if the scheme writes at all) stays fixed.
    """
    if attempts < 1:
        raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
    if attempts > policy.max_attempts:
        raise ConfigurationError(
            f"attempts {attempts} exceeds the policy's max_attempts "
            f"{policy.max_attempts}"
        )
    per_attempt = tuple(
        base.write_energy + base.read_energy * policy.escalation_factor(k) ** 2
        for k in range(1, attempts + 1)
    )
    total = sum(per_attempt)
    _observe_energy(base.scheme, total)
    return RetryEnergyBreakdown(
        scheme=base.scheme,
        base=base,
        attempts=attempts,
        per_attempt=per_attempt,
        total=total,
    )


def read_energy_comparison(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta_destructive: float = 1.22,
    beta_nondestructive: float = 2.13,
    config: Optional[TimingConfig] = None,
):
    """(destructive, nondestructive, energy ratio) per full read."""
    destructive = scheme_read_energy(
        cell, destructive_read_latency(cell, i_read2, beta_destructive, config)
    )
    nondestructive = scheme_read_energy(
        cell, nondestructive_read_latency(cell, i_read2, beta_nondestructive, config)
    )
    return destructive, nondestructive, destructive.total / nondestructive.total
