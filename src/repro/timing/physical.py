"""Highest-fidelity read simulation: nonlinear junction in the transient.

:func:`repro.timing.waveforms.simulate_nondestructive_read` linearizes the
MTJ at each phase's read current.  This module instead places the *actual*
tunnel-junction branch law (quadratic-conductance bias model) into a
:class:`~repro.circuit.nonlinear.NonlinearCircuit` and lets the Newton
transient solve the junction self-consistently at every time step —
including the finite-slope transitions between read currents where the
linearized model is wrong.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.divider import VoltageDivider
from repro.circuit.nonlinear import NonlinearCircuit, mtj_branch_current
from repro.circuit.sense_amp import SenseAmplifier
from repro.circuit.mna import TransientResult
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError
from repro.timing.latency import TimingConfig
from repro.timing.phases import PhaseSchedule, nondestructive_schedule

__all__ = ["PhysicalReadWaveforms", "simulate_physical_read"]


@dataclasses.dataclass(frozen=True)
class PhysicalReadWaveforms:
    """Waveforms of one fully nonlinear simulated read."""

    schedule: PhaseSchedule
    transient: TransientResult
    v_bl: np.ndarray
    v_c1: np.ndarray
    v_bo: np.ndarray
    sensed_bit: Optional[int]
    sense_differential: float
    total_duration: float


def simulate_physical_read(
    stored_bit: int,
    r_zero_low: float = 1220.0,
    r_zero_high: float = 2500.0,
    v_half_low: float = 2.5,
    v_half_high: float = 0.70,
    r_transistor: float = 917.0,
    i_read2: float = 200e-6,
    beta: float = 2.15,
    divider: Optional[VoltageDivider] = None,
    sense_amp: Optional[SenseAmplifier] = None,
    config: Optional[TimingConfig] = None,
    bitline: Optional[BitlineModel] = None,
    dt: float = 20e-12,
) -> PhysicalReadWaveforms:
    """Simulate a nondestructive read with the first-principles junction.

    The stored state selects which branch law (parallel / anti-parallel)
    sits in the netlist; the solver resolves its bias point self-
    consistently through both read phases.
    """
    if stored_bit not in (0, 1):
        raise ConfigurationError(f"stored_bit must be 0 or 1, got {stored_bit}")
    if dt <= 0.0:
        raise ConfigurationError("dt must be positive")
    if divider is None:
        divider = VoltageDivider(ratio=0.5)
    if sense_amp is None:
        sense_amp = SenseAmplifier()
    if config is None:
        config = TimingConfig()
    if bitline is None:
        bitline = PAPER_BITLINE

    if stored_bit:
        r_zero, v_half = r_zero_high, v_half_high
    else:
        r_zero, v_half = r_zero_low, v_half_low

    # Phase durations from a conservative settle estimate (the linear
    # latency model with the zero-bias resistance).
    i_read1 = i_read2 / beta
    t_read1 = bitline.settling_time(
        r_zero + r_transistor,
        extra_capacitance=config.capacitor.capacitance,
        tolerance=config.settle_tolerance,
        switch_resistance=config.capacitor.switch_resistance,
    )
    t_read2 = bitline.settling_time(
        r_zero + r_transistor, tolerance=config.settle_tolerance
    )
    schedule = nondestructive_schedule(
        i_read1=i_read1,
        i_read2=i_read2,
        t_wordline=config.t_wordline,
        t_first_read=t_read1,
        t_second_read=t_read2,
        t_sense=config.t_sense,
        t_latch=config.t_latch,
    )

    starts = []
    t = 0.0
    for phase in schedule.phases:
        starts.append((t, t + phase.duration, phase))
        t += phase.duration

    def phase_at(time: float):
        for start, end, phase in starts:
            if start <= time < end:
                return phase
        return starts[-1][2]

    def read_current(time: float) -> float:
        return phase_at(time).read_current

    def slt1_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT1", False)

    def slt2_closed(time: float) -> bool:
        return phase_at(time).signals.get("SLT2", False)

    capacitor = config.capacitor
    circuit = NonlinearCircuit()
    circuit.add_current_source("gnd", "BL", read_current, name="I_read")
    circuit.add_nonlinear_resistor(
        "BL", "SL", mtj_branch_current(r_zero, v_half), name="MTJ"
    )
    circuit.add_resistor("SL", "gnd", r_transistor, name="NMOS")
    circuit.add_capacitor("BL", "gnd", bitline.total_capacitance, name="C_BL")
    circuit.add_switch(
        "BL", "C1", slt1_closed, r_on=capacitor.switch_resistance, name="SLT1"
    )
    circuit.add_capacitor("C1", "gnd", capacitor.capacitance, name="C1")
    circuit.add_switch(
        "BL", "DIV", slt2_closed, r_on=capacitor.switch_resistance, name="SLT2"
    )
    circuit.add_resistor("DIV", "BO", divider.upper_resistance, name="R_div_up")
    circuit.add_resistor("BO", "gnd", divider.lower_resistance, name="R_div_lo")

    transient = circuit.solve_transient(schedule.total_duration, dt)
    sense_time = schedule.end_of("sense") - dt
    v_c1 = transient.at("C1", sense_time)
    v_bo = transient.at("BO", sense_time)
    bit = sense_amp.compare_bit(v_c1, v_bo)

    return PhysicalReadWaveforms(
        schedule=schedule,
        transient=transient,
        v_bl=transient["BL"],
        v_c1=transient["C1"],
        v_bo=transient["BO"],
        sensed_bit=bit,
        sense_differential=v_c1 - v_bo,
        total_duration=schedule.total_duration,
    )
