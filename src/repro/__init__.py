"""repro — full reproduction of *"A Nondestructive Self-Reference Scheme for
Spin-Transfer Torque Random Access Memory (STT-RAM)"* (Chen et al.,
DATE 2010).

The library models the complete stack the paper evaluates:

* :mod:`repro.device` — MgO MTJ with state-dependent resistance roll-off,
  spin-torque switching, NMOS access transistor, process variation;
* :mod:`repro.circuit` — MNA DC/transient solver, bit line, sampling
  capacitors, voltage divider, auto-zero sense amplifier;
* :mod:`repro.core` — the three sensing schemes (conventional, destructive
  self-reference, **nondestructive self-reference** — the contribution),
  read-current-ratio optimization and robustness analysis;
* :mod:`repro.array` — Monte-Carlo populations, yield analysis, the 16kb
  test-chip experiment;
* :mod:`repro.timing` — latency, waveforms, energy and power-failure
  reliability;
* :mod:`repro.calibration` — device fit to the paper's published numbers;
* :mod:`repro.analysis` — series/table generators for every paper figure
  and table;
* :mod:`repro.obs` — opt-in observability: deterministic metrics registry,
  trace-event ring buffer, and wall-clock profiling hooks over the whole
  sensing stack (off by default; ``obs.configure(enabled=True)``).

Quickstart::

    from repro import calibrated_cell, NondestructiveSelfReference
    cell = calibrated_cell()
    cell.write(1)
    scheme = NondestructiveSelfReference(beta=2.13)
    result = scheme.read(cell)
    assert result.bit == 1 and not result.data_destroyed
"""

from repro.calibration import calibrate, calibrated_cell, calibrated_device, PAPER_TARGETS
from repro.core import (
    Cell1T1J,
    ConventionalSensing,
    DestructiveSelfReference,
    NondestructiveSelfReference,
    ReadResult,
    SensingScheme,
    optimize_beta_destructive,
    optimize_beta_nondestructive,
    robustness_summary,
)
from repro.device import (
    MTJDevice,
    MTJParams,
    MTJState,
    SwitchingModel,
    VariationModel,
)
from repro import obs

try:
    # Single source of truth is pyproject.toml; the literal below is only
    # the fallback for source checkouts that were never pip-installed.
    from importlib.metadata import PackageNotFoundError, version

    __version__ = version("repro")
except PackageNotFoundError:
    __version__ = "1.2.0"

__all__ = [
    "__version__",
    "calibrate",
    "calibrated_cell",
    "calibrated_device",
    "PAPER_TARGETS",
    "Cell1T1J",
    "SensingScheme",
    "ReadResult",
    "ConventionalSensing",
    "DestructiveSelfReference",
    "NondestructiveSelfReference",
    "optimize_beta_destructive",
    "optimize_beta_nondestructive",
    "robustness_summary",
    "MTJDevice",
    "MTJParams",
    "MTJState",
    "SwitchingModel",
    "VariationModel",
    "obs",
]
