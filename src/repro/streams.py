"""Reserved top-level RNG streams: one registry for every ``(seed, k)`` tuple.

Several subsystems derive their randomness from a *tuple-seeded* generator
``np.random.default_rng((seed, k))`` so that one user-facing ``--seed``
fans out into statistically independent, individually replayable streams.
Historically each subsystem hard-coded its own ``k``; this module is the
single registry, so a new subsystem cannot silently collide with an
existing stream and every reserved pair is testable in one place.

Reserved streams (the integer is the second tuple element):

====================  ===  =====================================================
name                   k   owner
====================  ===  =====================================================
``workload``           0   request-stream generation (``repro serve``, benches)
``drift``              5   mid-trace drift-scenario strikes (``--drift``)
``shards``             6   topology seed split (``repro.service.topology``)
``failures``           7   structural failure geometry (``repro.service.failures``)
``prodtest``           8   wafer Monte-Carlo sampling (``repro.prodtest``)
====================  ===  =====================================================

Streams 1–4 are *not* centrally named: they are command-local substreams of
the ``repro faults`` / ``repro stats`` pipelines (fault injection, read,
recovery, stats workload) predating this registry, and are reserved here
only in the sense that new subsystems must not reuse them.

The draw order of every pre-existing stream is part of the repo's
bit-reproducibility contract: ``stream_rng(seed, name)`` must produce the
byte-identical generator state ``np.random.default_rng((seed, k))`` always
did (pinned by ``tests/test_streams.py``).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "WORKLOAD_STREAM",
    "DRIFT_STREAM",
    "SHARD_STREAM",
    "FAILURE_STREAM",
    "PRODTEST_STREAM",
    "RESERVED_STREAMS",
    "stream_key",
    "stream_rng",
    "stream_sequence",
]

WORKLOAD_STREAM = 0   #: request-stream generation
DRIFT_STREAM = 5      #: drift-scenario strike randomness
SHARD_STREAM = 6      #: per-channel seed split of the sharded topology
FAILURE_STREAM = 7    #: structural failure-scenario geometry
PRODTEST_STREAM = 8   #: wafer-scale production-test Monte-Carlo sampling

#: name → reserved second tuple element (read-only).
RESERVED_STREAMS: Mapping[str, int] = MappingProxyType(
    {
        "workload": WORKLOAD_STREAM,
        "drift": DRIFT_STREAM,
        "shards": SHARD_STREAM,
        "failures": FAILURE_STREAM,
        "prodtest": PRODTEST_STREAM,
    }
)

#: The command-local legacy block (``repro faults`` / ``repro stats``
#: substreams); new subsystems must allocate above it.
_LEGACY_BLOCK = range(0, 5)


def _resolve(stream: Union[str, int]) -> int:
    """The reserved stream id for a registry name or a raw integer."""
    if isinstance(stream, str):
        try:
            return RESERVED_STREAMS[stream]
        except KeyError:
            raise ConfigurationError(
                f"unknown reserved RNG stream {stream!r}; expected one of "
                f"{sorted(RESERVED_STREAMS)}"
            ) from None
    value = int(stream)
    if value != stream or value < 0:
        raise ConfigurationError(
            f"stream id must be a non-negative integer, got {stream!r}"
        )
    return value


def stream_key(seed: int, stream: Union[str, int]) -> tuple:
    """The ``(seed, k)`` tuple feeding ``np.random.default_rng``."""
    return (int(seed), _resolve(stream))


def stream_rng(seed: int, stream: Union[str, int]) -> np.random.Generator:
    """The reserved stream's generator — byte-identical with the historical
    ``np.random.default_rng((seed, k))`` construction."""
    return np.random.default_rng(stream_key(seed, stream))


def stream_sequence(seed: int, stream: Union[str, int]) -> np.random.SeedSequence:
    """The reserved stream's :class:`~numpy.random.SeedSequence` (for
    subsystems that spawn children, e.g. the topology's shard split)."""
    return np.random.SeedSequence(stream_key(seed, stream))
