"""Process-global observability switch, profiling hooks, and helpers.

The instrumentation scattered through the sensing stack all funnels
through this module.  The contract that keeps it safe to leave in the hot
paths:

* **Off by default.**  ``active()`` is a single attribute read; every
  instrumented call site checks it first and falls straight through when
  observability is disabled, so an uninstrumented-looking run stays
  bit-exact and within noise of its pre-instrumentation wall-clock.
* **Never touches the simulation.**  No instrumentation consumes RNG
  draws, mutates cell state, or changes control flow — enabling metrics
  cannot change a single sensed bit.
* **One global registry/tracer pair.**  ``configure(enabled=True)``
  installs a *fresh* :class:`~repro.obs.registry.MetricsRegistry` and
  :class:`~repro.obs.trace.TraceBuffer` (unless told to keep the current
  ones), so each campaign's counters reconcile exactly with its own
  result; ``capture()`` is the scoped variant for tests and libraries.

Usage::

    from repro import obs

    obs.configure(enabled=True)
    result = run_fault_campaign(bits=2304, rates=(1e-3,))
    snap = obs.get_registry().snapshot()
    snap["counters"]["campaign.words{outcome=detected}"]  # == detected total
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Iterator, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceBuffer

__all__ = [
    "configure",
    "active",
    "get_registry",
    "get_tracer",
    "reset",
    "capture",
    "trace",
    "profiled",
    "profile_block",
]


class _ObsState:
    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = TraceBuffer()


_STATE = _ObsState()


def configure(
    enabled: bool = True,
    *,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[TraceBuffer] = None,
    trace_capacity: Optional[int] = None,
    fresh: bool = True,
) -> Tuple[MetricsRegistry, TraceBuffer]:
    """Turn observability on or off for the whole process.

    By default a **fresh** registry and trace buffer are installed when
    enabling (``fresh=True``), so the counters collected afterwards
    reconcile exactly with whatever workload runs next.  Pass
    ``fresh=False`` to keep accumulating into the current stores, or pass
    explicit ``registry``/``tracer`` instances to share them.  Returns the
    (registry, tracer) pair now in effect.
    """
    if registry is not None:
        _STATE.registry = registry
    elif fresh and enabled:
        _STATE.registry = MetricsRegistry()
    if tracer is not None:
        _STATE.tracer = tracer
    elif trace_capacity is not None:
        _STATE.tracer = TraceBuffer(capacity=trace_capacity)
    elif fresh and enabled:
        _STATE.tracer = TraceBuffer()
    _STATE.enabled = bool(enabled)
    return _STATE.registry, _STATE.tracer


def active() -> bool:
    """True when instrumentation should record (the hot-path guard)."""
    return _STATE.enabled


def get_registry() -> MetricsRegistry:
    """The registry currently collecting (even when disabled)."""
    return _STATE.registry


def get_tracer() -> TraceBuffer:
    """The trace buffer currently collecting (even when disabled)."""
    return _STATE.tracer


def reset() -> None:
    """Disable observability and discard all collected data."""
    _STATE.enabled = False
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = TraceBuffer()


@contextlib.contextmanager
def capture(
    trace_capacity: Optional[int] = None,
) -> Iterator[Tuple[MetricsRegistry, TraceBuffer]]:
    """Scoped observability: enable with fresh stores, restore on exit.

    The workhorse for tests and library callers that want one workload's
    metrics without disturbing whatever global state the process had::

        with obs.capture() as (registry, tracer):
            scheme.read_many(population, states, rng=rng)
        assert registry.counter("core.reads.batch", scheme=scheme.name) == 1
    """
    previous = (_STATE.enabled, _STATE.registry, _STATE.tracer)
    pair = configure(True, trace_capacity=trace_capacity)
    try:
        yield pair
    finally:
        _STATE.enabled, _STATE.registry, _STATE.tracer = previous


def trace(kind: str, /, **fields) -> None:
    """Emit one trace event if observability is active (no-op otherwise).

    ``kind`` is positional-only so a field may itself be named ``kind``
    (fault-injection events label the fault kind that way).
    """
    if _STATE.enabled:
        _STATE.tracer.emit(kind, **fields)


def profiled(name: str):
    """Decorator: wall-clock the function into ``profile`` when active.

    Each call records its duration under ``name`` (plus a ``.calls``
    counter) via :meth:`~repro.obs.registry.MetricsRegistry
    .observe_profile`.  When observability is disabled the wrapper is a
    single boolean check and a tail call — cheap enough for batch-level
    hot paths (do not put it on per-bit inner loops).
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                _STATE.registry.observe_profile(name, time.perf_counter() - start)

        wrapper.__obs_profiled__ = name
        return wrapper

    return decorate


@contextlib.contextmanager
def profile_block(name: str) -> Iterator[None]:
    """Context-manager form of :func:`profiled` for ad-hoc regions."""
    if not _STATE.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _STATE.registry.observe_profile(name, time.perf_counter() - start)
