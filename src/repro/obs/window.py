"""Windowed-signal helpers for online feedback control.

The adaptive serving controller (:mod:`repro.service.adaptive`) watches
the live simulation — rolling p99 latency, per-interval retry and
failure rates — and must do so *deterministically*: the same completion
stream has to produce the same control decisions on every replay.  These
helpers are the plumbing for that:

* :class:`RollingWindow` — a fixed-capacity ring of float samples with
  deterministic summary statistics (mean, max, percentile, fraction
  above a threshold).  Pure ``numpy`` reductions over the retained
  samples; no randomness, no wall-clock.
* :class:`DeltaTracker` — turns monotonically increasing counters (the
  backend's cumulative ``reads`` / ``retried_words`` / ``failed_words``)
  into per-control-interval deltas, so rates are computed over the
  *recent* window instead of the whole run.

Neither touches the process-global obs switch: they are plain data
structures a controller owns, usable with observability off.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RollingWindow", "DeltaTracker"]


class RollingWindow:
    """Fixed-capacity ring of float samples with deterministic stats."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: Deque[float] = collections.deque(maxlen=self.capacity)
        self.pushed = 0  #: total samples ever pushed (retained or evicted)

    def __len__(self) -> int:
        return len(self._values)

    def push(self, value: float) -> None:
        """Append a sample, evicting the oldest once full."""
        self._values.append(float(value))
        self.pushed += 1

    def clear(self) -> None:
        """Drop the retained samples (``pushed`` is preserved)."""
        self._values.clear()

    def values(self) -> np.ndarray:
        """Retained samples, oldest first."""
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Mean of the retained samples (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.mean(self.values()))

    def maximum(self) -> float:
        """Max of the retained samples (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.max(self.values()))

    def percentile(self, q: float) -> float:
        """``q``-th percentile of the retained samples (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be within [0, 100], got {q}")
        if not self._values:
            return 0.0
        return float(np.percentile(self.values(), q))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of retained samples strictly above ``threshold``."""
        if not self._values:
            return 0.0
        return float(np.mean(self.values() > threshold))


class DeltaTracker:
    """Per-interval deltas of monotonically increasing counters.

    Each :meth:`update` call takes the current cumulative totals and
    returns how much each advanced since the previous call (missing keys
    start from 0).  Callers that want a baseline — e.g. ignore an
    initialization fill — simply call :meth:`update` once at attach time
    and discard the result.
    """

    def __init__(self) -> None:
        self._last: Dict[str, float] = {}

    def update(self, **totals: float) -> Dict[str, float]:
        """Deltas since the previous call; updates the stored totals."""
        deltas = {}
        for key, total in totals.items():
            deltas[key] = total - self._last.get(key, 0.0)
            self._last[key] = total
        return deltas
