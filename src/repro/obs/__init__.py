"""repro.obs — zero-dependency observability for the sensing stack.

Three cooperating pieces (see ``docs/OBSERVABILITY.md`` for the full
metric/event catalog and a worked example):

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with a deterministic JSON snapshot (``metrics.json``);
* :class:`TraceBuffer` — a bounded ring of structured
  :class:`TraceEvent` records (``events.jsonl``): reads issued/retried/
  escalated, ECC corrections, scrubs, spare repairs, injected faults;
* :func:`profiled` / :func:`profile_block` — wall-clock timing hooks
  whose results land in the snapshot's segregated ``profile`` section.

Everything hangs off one process-global switch that **defaults off**::

    from repro import obs
    from repro.faults import run_fault_campaign

    obs.configure(enabled=True)            # fresh registry + tracer
    result = run_fault_campaign(bits=2304, rates=(1e-3,), seed=7)

    registry = obs.get_registry()
    registry.counter("campaign.words", outcome="detected")
    registry.write_json("metrics.json")    # == result.metrics, serialized
    obs.get_tracer().write_jsonl("events.jsonl")

With observability disabled every instrumented call site is a single
boolean check, adds no measurable overhead to the batch kernels, and the
sensed bits are bit-exact with an uninstrumented build (the
instrumentation never consumes RNG draws).  The CLI front ends are
``python -m repro stats`` and the ``--metrics-out`` / ``--trace-out``
flags on ``python -m repro faults``.
"""

from repro.obs.registry import (
    ATTEMPTS_EDGES,
    BACKOFF_NS_EDGES,
    ENERGY_PJ_EDGES,
    LATENCY_NS_EDGES,
    PROFILE_SECONDS_EDGES,
    QUEUE_DEPTH_EDGES,
    SERVICE_LATENCY_NS_EDGES,
    MetricsRegistry,
    metric_key,
)
from repro.obs.runtime import (
    active,
    capture,
    configure,
    get_registry,
    get_tracer,
    profile_block,
    profiled,
    reset,
    trace,
)
from repro.obs.window import DeltaTracker, RollingWindow
from repro.obs.trace import (
    ECC_CORRECTED,
    ECC_DETECTED,
    FAULT_INJECTED,
    POWER_FAILURE,
    READ_ESCALATED,
    READ_ISSUED,
    READ_RETRIED,
    SCRUB,
    SPARE_REPAIR,
    WORD_LOST,
    TraceBuffer,
    TraceEvent,
)

__all__ = [
    "configure",
    "active",
    "get_registry",
    "get_tracer",
    "reset",
    "capture",
    "trace",
    "profiled",
    "profile_block",
    "MetricsRegistry",
    "metric_key",
    "RollingWindow",
    "DeltaTracker",
    "TraceBuffer",
    "TraceEvent",
    "BACKOFF_NS_EDGES",
    "ATTEMPTS_EDGES",
    "LATENCY_NS_EDGES",
    "ENERGY_PJ_EDGES",
    "PROFILE_SECONDS_EDGES",
    "SERVICE_LATENCY_NS_EDGES",
    "QUEUE_DEPTH_EDGES",
    "READ_ISSUED",
    "READ_RETRIED",
    "READ_ESCALATED",
    "ECC_CORRECTED",
    "ECC_DETECTED",
    "SCRUB",
    "SPARE_REPAIR",
    "FAULT_INJECTED",
    "POWER_FAILURE",
    "WORD_LOST",
]
