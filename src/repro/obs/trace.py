"""Structured trace events: a bounded ring buffer of what the stack did.

Where the :class:`~repro.obs.registry.MetricsRegistry` aggregates, the
trace buffer *narrates*: each instrumented operation appends one
:class:`TraceEvent` — a read issued, a retry round fired, the sense current
escalated, the SECDED decoder corrected a word, a scrub pass ran, a word
migrated to a spare, a fault model struck.  Events carry a monotonically
increasing sequence number (the simulation has no meaningful wall-clock
ordering across seeds) plus free-form string/number fields.

The buffer is a fixed-capacity ring: when full, the oldest events are
dropped and counted (``dropped``) rather than growing without bound — a
16kb campaign emits tens of thousands of events, and the caller who wants
all of them can raise the capacity via ``obs.configure(trace_capacity=...)``
or stream to disk with :meth:`TraceBuffer.write_jsonl`.
"""

from __future__ import annotations

import collections
import dataclasses
import json
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "TraceEvent",
    "TraceBuffer",
    "READ_ISSUED",
    "READ_RETRIED",
    "READ_ESCALATED",
    "ECC_CORRECTED",
    "ECC_DETECTED",
    "SCRUB",
    "SPARE_REPAIR",
    "FAULT_INJECTED",
    "POWER_FAILURE",
    "WORD_LOST",
]

# ---------------------------------------------------------------------------
# Event kinds (the schema's closed vocabulary; see docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------
READ_ISSUED = "read_issued"        #: one batched read pass entered a kernel
READ_RETRIED = "read_retried"      #: a retry round re-sensed unresolved bits
READ_ESCALATED = "read_escalated"  #: a retry round raised the sense current
ECC_CORRECTED = "ecc_corrected"    #: the SECDED decoder fixed one bit
ECC_DETECTED = "ecc_detected"      #: the decoder flagged an uncorrectable word
SCRUB = "scrub"                    #: one scrub pass over the array completed
SPARE_REPAIR = "spare_repair"      #: a word migrated to a spare physical word
FAULT_INJECTED = "fault_injected"  #: a fault model struck cells
POWER_FAILURE = "power_failure"    #: a mid-read supply loss was injected
WORD_LOST = "word_lost"            #: the recovery ladder exhausted on a word


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured event.

    Attributes
    ----------
    seq:
        Monotonic sequence number, unique within one buffer; the total
        order of everything the instrumented stack did.
    kind:
        One of the module-level kind constants (``read_issued``, ...).
    fields:
        Event payload: plain strings/numbers only, so every event
        serializes losslessly to one JSON line.
    """

    seq: int
    kind: str
    fields: Dict[str, object]

    def to_json(self) -> str:
        """The event as one compact JSON object (the JSONL row format)."""
        payload = {"seq": self.seq, "kind": self.kind}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True)


class TraceBuffer:
    """Fixed-capacity ring buffer of :class:`TraceEvent` objects."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: collections.deque = collections.deque(maxlen=self.capacity)
        self._seq = 0
        self.dropped = 0  #: events evicted because the ring was full

    def emit(self, kind: str, /, **fields) -> TraceEvent:
        """Append one event; returns it (mainly for tests).

        ``kind`` is positional-only so events may carry a field that is
        itself named ``kind``.
        """
        event = TraceEvent(seq=self._seq, kind=kind, fields=fields)
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(tuple(self._events))

    def events(self, kind: Optional[str] = None) -> Tuple[TraceEvent, ...]:
        """Buffered events, optionally filtered to one kind."""
        if kind is None:
            return tuple(self._events)
        return tuple(e for e in self._events if e.kind == kind)

    def counts_by_kind(self) -> Dict[str, int]:
        """How many *buffered* events exist per kind (sorted by kind)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop every buffered event and reset the sequence counter."""
        self._events.clear()
        self._seq = 0
        self.dropped = 0

    def write_jsonl(self, path) -> int:
        """Write the buffered events to ``path`` as JSON Lines; returns the
        number of lines written."""
        events = self.events()
        with open(path, "w") as handle:
            for event in events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(events)
