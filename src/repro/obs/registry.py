"""Deterministic metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs`.  Three metric kinds
are supported, all keyed by a metric *name* plus an optional set of string
labels (rendered canonically as ``name{key=value,...}`` with keys sorted):

* **counters** — monotonically increasing totals (reads issued, retries
  fired, words recovered per tier);
* **gauges** — last-written values (current fault rate under test);
* **histograms** — bucketed distributions with **fixed bucket edges chosen
  at registration**, so two runs that observe the same values produce the
  identical snapshot.  Simulated quantities (backoff nanoseconds, attempt
  counts, modelled read latency/energy) belong here and are deterministic
  under a fixed seed.

Wall-clock profiling timings are *not* deterministic, so they live in a
separate ``profile`` section (see :meth:`MetricsRegistry.observe_profile`)
that :meth:`MetricsRegistry.snapshot` can exclude — ``snapshot
(profile=False)`` is reproducible bit-for-bit under a fixed seed.

The registry has no locks and no background threads: the simulation stack
is single-threaded, and keeping the hot-path cost to one dict lookup plus
an add is what lets the instrumentation stay on by default in campaigns.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "HistogramSnapshot",
    "metric_key",
    "BACKOFF_NS_EDGES",
    "ATTEMPTS_EDGES",
    "LATENCY_NS_EDGES",
    "ENERGY_PJ_EDGES",
    "PROFILE_SECONDS_EDGES",
    "SERVICE_LATENCY_NS_EDGES",
    "QUEUE_DEPTH_EDGES",
    "BATCH_SIZE_EDGES",
]

#: Simulated retry backoff per bit [ns] (exponential policy defaults).
BACKOFF_NS_EDGES: Tuple[float, ...] = (0.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0)
#: Per-bit / per-word sensing attempts.
ATTEMPTS_EDGES: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
#: Modelled read latency [ns] (single reads land 10–30 ns; retries above).
LATENCY_NS_EDGES: Tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0, 200.0)
#: Modelled read energy [pJ].
ENERGY_PJ_EDGES: Tuple[float, ...] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)
#: Wall-clock profile timings [s] (``profile`` section only).
PROFILE_SECONDS_EDGES: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)
#: End-to-end service latency [ns]: queueing stretches reads far past the
#: sensing-only LATENCY_NS_EDGES, so the grid reaches into microseconds.
SERVICE_LATENCY_NS_EDGES: Tuple[float, ...] = (
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)
#: Per-bank queue depth sampled at each service start.
QUEUE_DEPTH_EDGES: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)
#: Coalesced-group size handed to the array backend per ladder call.
BATCH_SIZE_EDGES: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: Mapping[str, object] = ()) -> str:
    """Canonical flat key: ``name`` or ``name{k1=v1,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in _label_key(dict(labels)))
    return f"{name}{{{rendered}}}"


class _Histogram:
    """One labeled histogram series: fixed edges, overflow bucket, stats."""

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float]):
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        if list(self.edges) != sorted(set(self.edges)):
            raise ConfigurationError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        if not self.edges:
            raise ConfigurationError("histogram needs at least one bucket edge")
        # counts[i] holds values in (edges[i-1], edges[i]]; counts[0] holds
        # values <= edges[0]; the final slot is the overflow > edges[-1].
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        slots = np.searchsorted(np.asarray(self.edges), values, side="left")
        for slot, n in zip(*np.unique(slots, return_counts=True)):
            self.counts[int(slot)] += int(n)
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    def snapshot(self) -> "HistogramSnapshot":
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


#: JSON shape of one exported histogram (see :meth:`_Histogram.snapshot`).
HistogramSnapshot = Dict[str, object]


class MetricsRegistry:
    """Process-local metric store with a deterministic JSON export.

    All mutators take the metric name plus keyword labels::

        registry.inc("retry.bits_retried", 3, scheme="nondestructive")
        registry.set_gauge("campaign.rate", 1e-3)
        registry.observe("retry.backoff_ns", 15.0, edges=BACKOFF_NS_EDGES)

    A histogram's bucket edges are fixed by its **first** ``observe`` call
    (per name — all label series of one name share edges); later calls may
    omit ``edges``.  Snapshots render flat sorted ``name{labels}`` keys, so
    the export is byte-identical across runs that recorded the same values.
    """

    def __init__(self):
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[_LabelKey, _Histogram]] = {}
        self._edges: Dict[str, Tuple[float, ...]] = {}
        self._profiles: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Mutators
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to its latest value."""
        self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Optional[Sequence[float]] = None,
        **labels,
    ) -> None:
        """Record one value into the named histogram."""
        self._series(name, edges, labels).observe(value)

    def observe_many(
        self,
        name: str,
        values: np.ndarray,
        edges: Optional[Sequence[float]] = None,
        **labels,
    ) -> None:
        """Record a whole array of values in one vectorized pass."""
        self._series(name, edges, labels).observe_many(values)

    def observe_profile(self, name: str, seconds: float) -> None:
        """Record one wall-clock timing [s] under the ``profile`` section.

        Profile entries are intentionally segregated: they are the only
        non-deterministic metrics, and ``snapshot(profile=False)`` drops
        them so seeded runs stay byte-comparable.
        """
        series = self._profiles.get(name)
        if series is None:
            series = self._profiles[name] = _Histogram(PROFILE_SECONDS_EDGES)
        series.observe(seconds)

    def _series(
        self,
        name: str,
        edges: Optional[Sequence[float]],
        labels: Mapping[str, object],
    ) -> _Histogram:
        if name not in self._edges:
            if edges is None:
                raise ConfigurationError(
                    f"histogram {name!r} is not registered; pass edges= on "
                    "its first observation"
                )
            self._edges[name] = tuple(float(e) for e in edges)
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        series = family.get(key)
        if series is None:
            series = family[key] = _Histogram(self._edges[name])
        return series

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, {}).get(_label_key(labels), 0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        """Current gauge value (None when never set)."""
        return self._gauges.get(name, {}).get(_label_key(labels))

    def histogram(self, name: str, **labels) -> Optional[HistogramSnapshot]:
        """Snapshot of one histogram series (None when never observed)."""
        series = self._histograms.get(name, {}).get(_label_key(labels))
        return series.snapshot() if series is not None else None

    def profile(self, name: str) -> Optional[HistogramSnapshot]:
        """Snapshot of one profile timer (None when never recorded)."""
        series = self._profiles.get(name)
        return series.snapshot() if series is not None else None

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counter series whose name starts with ``prefix``, flat-keyed."""
        out: Dict[str, float] = {}
        for name, series in self._counters.items():
            if name.startswith(prefix):
                for key, value in series.items():
                    out[metric_key(name, dict(key))] = value
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self, profile: bool = True) -> Dict[str, Dict[str, object]]:
        """The full registry as plain sorted dicts (JSON-ready).

        With ``profile=False`` the wall-clock section is omitted and the
        result is deterministic under a fixed simulation seed.
        """
        def flatten(store: Dict[str, Dict[_LabelKey, object]], render):
            flat = {}
            for name, series in store.items():
                for key, value in series.items():
                    flat[metric_key(name, dict(key))] = render(value)
            return dict(sorted(flat.items()))

        out: Dict[str, Dict[str, object]] = {
            "counters": flatten(self._counters, lambda v: v),
            "gauges": flatten(self._gauges, lambda v: v),
            "histograms": flatten(self._histograms, lambda h: h.snapshot()),
        }
        if profile:
            out["profile"] = {
                name: series.snapshot()
                for name, series in sorted(self._profiles.items())
            }
        return out

    def to_json(self, profile: bool = True, indent: int = 2) -> str:
        """The snapshot rendered as stable, human-diffable JSON."""
        return json.dumps(self.snapshot(profile=profile), indent=indent, sort_keys=True)

    def write_json(self, path, profile: bool = True) -> None:
        """Write the snapshot to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json(profile=profile))
            handle.write("\n")

    def merge_counters(self, names: Iterable[str]) -> float:
        """Sum of every series of the given counter names (all labels)."""
        total = 0.0
        for name in names:
            total += sum(self._counters.get(name, {}).values())
        return total
