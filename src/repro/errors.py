"""Exception hierarchy for :mod:`repro`."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model or scheme was configured with physically invalid parameters."""


class ConvergenceError(ReproError):
    """A numeric solve (optimization, MNA, calibration) failed to converge."""


class SensingError(ReproError):
    """A read operation could not produce a valid result."""


class CircuitError(ReproError):
    """Netlist construction or solving failed (singular matrix, bad node)."""
