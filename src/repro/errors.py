"""Exception hierarchy for :mod:`repro`."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A model or scheme was configured with physically invalid parameters."""


class ConvergenceError(ReproError):
    """A numeric solve (optimization, MNA, calibration) failed to converge."""


class SensingError(ReproError):
    """A read operation could not produce a valid result."""


class CircuitError(ReproError):
    """Netlist construction or solving failed (singular matrix, bad node)."""


class FaultError(ReproError):
    """A fault-handling operation failed (bad fault model, unrecoverable
    injected fault outside the recovery ladder's reach)."""


class RetryExhaustedError(FaultError):
    """Every tier of the recovery ladder (retry → ECC → scrub → repair) was
    spent and the data still could not be returned reliably."""

    def __init__(self, message: str, address: int = -1, attempts: int = 0):
        super().__init__(message)
        self.address = address
        self.attempts = attempts
