"""Fault injector: applies a set of fault models with one owned RNG.

The injector is the boundary between the fault models and the device /
circuit layers.  Its RNG is deliberately separate from the RNG the read
paths consume: injecting faults must not shift the sensing draw stream, so
a faulted run and a healthy run of the same seed stay comparable draw for
draw (and the scalar-vs-batch equivalence contracts keep holding on
faulted populations).

Permanent models (stuck short/open) mutate the population's parameter
arrays in place — both the scalar ``materialize_cell`` path and the
vectorized ``read_many`` kernels then see the identical defect.  Transient
models are exposed as per-operation hooks: :meth:`FaultInjector.
perturb_scheme` (offset drift + bit-line noise folded into the sense
amplifier), :meth:`FaultInjector.disturb_states` (read-disturb flips) and
:meth:`FaultInjector.power_failure_phase` (destructive-read aborts).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.sense_amp import SenseAmplifier
from repro.core.base import SensingScheme
from repro.core.cell import Cell1T1J
from repro.device.variation import CellPopulation
from repro.errors import FaultError
from repro.faults.models import FaultKind
from repro.obs import runtime as _obs
from repro.obs.trace import FAULT_INJECTED, POWER_FAILURE

__all__ = ["FaultMap", "FaultInjector"]


@dataclasses.dataclass(frozen=True)
class FaultMap:
    """Ground truth of one permanent-fault injection pass.

    Maps each :class:`~repro.faults.models.FaultKind` that struck to the
    sorted bit indices it struck — the oracle a campaign scores its
    detected/corrected/escaped counts against.
    """

    size: int
    indices: Dict[FaultKind, np.ndarray]

    def of_kind(self, kind: FaultKind) -> np.ndarray:
        """Indices struck by ``kind`` (empty when it struck none)."""
        return self.indices.get(kind, np.empty(0, dtype=np.intp))

    @property
    def fault_mask(self) -> np.ndarray:
        """Boolean mask over all bits: True where any fault landed."""
        mask = np.zeros(self.size, dtype=bool)
        for idx in self.indices.values():
            mask[idx] = True
        return mask

    @property
    def count(self) -> int:
        """Total number of faulted bits (a bit struck twice counts once)."""
        return int(np.count_nonzero(self.fault_mask))

    def faults_per_word(self, word_bits: int, words: Optional[int] = None) -> np.ndarray:
        """Faulted-bit count of each ``word_bits``-wide word (bit index
        ``i`` belongs to word ``i // word_bits``)."""
        if word_bits < 1:
            raise FaultError(f"word_bits must be >= 1, got {word_bits}")
        if words is None:
            words = self.size // word_bits
        counts = np.bincount(
            np.nonzero(self.fault_mask)[0] // word_bits,
            minlength=max(words, 0),
        )
        return counts[:words]


def _with_sense_offset(scheme: SensingScheme, delta: float) -> SensingScheme:
    """A shallow copy of ``scheme`` whose sense amplifier sees an extra
    ``delta`` volts of input-referred offset."""
    amp = getattr(scheme, "sense_amp", None)
    if not isinstance(amp, SenseAmplifier):
        raise FaultError(
            f"scheme {scheme.name!r} exposes no sense_amp to perturb"
        )
    perturbed = copy.copy(scheme)
    perturbed.sense_amp = SenseAmplifier(
        offset=amp.offset + delta,
        resolution=amp.resolution,
        raw_offset=amp.raw_offset,
        auto_zero_rejection=amp.auto_zero_rejection,
    )
    return perturbed


class FaultInjector:
    """Applies a list of fault models with one reproducible RNG.

    Parameters
    ----------
    faults:
        The fault models to apply (any mix of permanent and transient).
    rng:
        The injector's private randomness; defaults to a fresh generator.
        Keep it distinct from the read RNG so injection never shifts the
        sensing draw stream.
    """

    def __init__(
        self,
        faults: Sequence,
        rng: Optional[np.random.Generator] = None,
    ):
        self.faults = tuple(faults)
        self.rng = rng if rng is not None else np.random.default_rng()
        # The aging drift is quasi-static: drawn once per injector.
        self._drift: Optional[float] = None

    # ------------------------------------------------------------------
    # Model views
    # ------------------------------------------------------------------
    def of_kind(self, kind: FaultKind) -> Tuple:
        """All configured models of one kind."""
        return tuple(f for f in self.faults if f.kind is kind)

    @property
    def permanent_faults(self) -> Tuple:
        """The configured hard-defect models."""
        return tuple(f for f in self.faults if getattr(f, "permanent", False))

    # ------------------------------------------------------------------
    # Permanent faults
    # ------------------------------------------------------------------
    def inject_population(self, population: CellPopulation) -> FaultMap:
        """Strike the permanent models into a population (in place) and
        return the ground-truth :class:`FaultMap`."""
        size = population.size
        indices: Dict[FaultKind, np.ndarray] = {}
        for fault in self.permanent_faults:
            mask = fault.select(size, self.rng)
            fault.apply_population(population, mask)
            struck = np.nonzero(mask)[0]
            if _obs.active() and struck.size:
                _obs.get_registry().inc(
                    "faults.injected_cells", int(struck.size), kind=fault.kind.value
                )
                _obs.trace(
                    FAULT_INJECTED, kind=fault.kind.value, cells=int(struck.size)
                )
            if fault.kind in indices:
                struck = np.union1d(indices[fault.kind], struck)
            indices[fault.kind] = struck
        return FaultMap(size=size, indices=indices)

    def inject_array(self, array) -> FaultMap:
        """Strike the permanent models into an array's cell population."""
        return self.inject_population(array.population)

    def inject_cell(self, cell: Cell1T1J) -> Tuple[FaultKind, ...]:
        """Strike the permanent models into one standalone cell (each with
        its own rate draw); returns the kinds that landed."""
        landed = []
        for fault in self.permanent_faults:
            if self.rng.random() < fault.rate:
                fault.apply_cell(cell)
                landed.append(fault.kind)
        return tuple(landed)

    # ------------------------------------------------------------------
    # Transient faults (per-operation hooks)
    # ------------------------------------------------------------------
    def perturb_scheme(self, scheme: SensingScheme) -> SensingScheme:
        """The scheme one read operation actually experiences.

        Folds the quasi-static offset drift (drawn once per injector) and
        one fresh bit-line noise sample (drawn per call) into the scheme's
        sense amplifier.  Returns ``scheme`` itself when neither model is
        configured, so the healthy path costs nothing.
        """
        delta = 0.0
        drift_models = self.of_kind(FaultKind.SENSE_OFFSET_DRIFT)
        if drift_models:
            if self._drift is None:
                self._drift = sum(m.draw(self.rng) for m in drift_models)
            delta += self._drift
        for noise in self.of_kind(FaultKind.BITLINE_NOISE):
            delta += noise.draw(self.rng)
        if delta == 0.0:
            return scheme
        return _with_sense_offset(scheme, delta)

    def disturb_states(self, states: np.ndarray) -> np.ndarray:
        """Apply read-disturb flips to stored states (in place); returns
        the indices that flipped."""
        flipped = np.zeros(states.size, dtype=bool)
        for fault in self.of_kind(FaultKind.READ_DISTURB):
            flipped |= fault.flip_mask(states.size, self.rng)
        idx = np.nonzero(flipped)[0]
        states[idx] ^= 1
        if _obs.active() and idx.size:
            _obs.get_registry().inc(
                "faults.injected_cells",
                int(idx.size),
                kind=FaultKind.READ_DISTURB.value,
            )
            _obs.trace(
                FAULT_INJECTED,
                kind=FaultKind.READ_DISTURB.value,
                cells=int(idx.size),
            )
        return idx

    def power_failure_phase(self) -> Optional[str]:
        """Phase at which this operation loses power, or ``None``.

        Only meaningful for the destructive self-reference scheme (the
        other schemes never hold the data in a volatile latch); pass the
        result as its ``power_failure_at`` keyword.
        """
        for fault in self.of_kind(FaultKind.POWER_FAILURE):
            phase = fault.draw_phase(self.rng)
            if phase is not None:
                if _obs.active():
                    _obs.get_registry().inc("faults.power_failures")
                    _obs.trace(POWER_FAILURE, phase=phase)
                return phase
        return None
