"""Time-scheduled drift scenarios injected mid-trace via the event calendar.

The fault models in :mod:`repro.faults.models` describe *static* damage:
an injector configured before the run perturbs every operation the same
way.  Real deployments also see **conditions that change while traffic is
in flight** — a package heating up, an external magnetic field sweeping
past, reference roll-off shifting as the device ages, a sense amplifier
whose trimmed offset walks away.  This module turns those into
deterministic, replayable *scenarios*: piecewise schedules of
(time, condition) samples that :func:`install_drift` registers on the
simulation's :class:`~repro.service.engine.DiscreteEventEngine` calendar,
so the backend's physics change at exact simulated instants — the same
instants on every replay of the same trace.

Two condition channels are modelled:

* ``sense_offset`` — extra input-referred sense-amplifier offset [V] in
  effect from the sample time onward (a step function between samples).
  It reuses the same mechanism as
  :class:`~repro.faults.models.SenseOffsetDrift` but is *scheduled*, not
  drawn: no RNG is consumed, so the sensing stream is untouched and a
  drifted run stays draw-for-draw comparable with an undrifted one.
* ``flip_fraction`` — a discrete disturbance strike at the sample time
  flipping that fraction of stored cells (an external-field pulse).
  Strikes draw from a **dedicated drift RNG** the caller passes to
  :func:`install_drift`, never from the sensing stream.

Scenario builders cover the four mid-trace cases the testing literature
calls out: a temperature ramp (up, hold, back down), an external-field
disturbance window (offset plus a flip strike, then clears), an aging
roll-off shift (monotonic, permanent), and a sense-amp drift step.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import runtime as _obs

__all__ = [
    "DriftPoint",
    "DriftScenario",
    "temperature_ramp",
    "field_disturbance_window",
    "aging_rolloff_shift",
    "sense_amp_drift_step",
    "install_drift",
]


@dataclasses.dataclass(frozen=True)
class DriftPoint:
    """One sample of a drift schedule.

    Attributes
    ----------
    time:
        Absolute simulated time [s] the sample takes effect.
    sense_offset:
        Extra input-referred sense-amp offset [V] in effect from ``time``
        onward (replaces, not accumulates: the schedule is a step
        function).
    flip_fraction:
        Fraction of stored cells flipped **at** ``time`` (a one-shot
        disturbance strike; 0 for pure parametric drift).
    """

    time: float
    sense_offset: float
    flip_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0.0 or not math.isfinite(self.time):
            raise ConfigurationError(
                f"drift sample time must be finite and >= 0, got {self.time}"
            )
        if not math.isfinite(self.sense_offset):
            raise ConfigurationError("sense_offset must be finite")
        if not 0.0 <= self.flip_fraction <= 1.0:
            raise ConfigurationError(
                f"flip_fraction must be within [0, 1], got {self.flip_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class DriftScenario:
    """A named, time-ordered schedule of :class:`DriftPoint` samples."""

    name: str
    points: Tuple[DriftPoint, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not self.points:
            raise ConfigurationError("scenario must have at least one point")
        times = [point.time for point in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ConfigurationError(
                f"scenario {self.name!r} points must be time-ordered"
            )

    @property
    def needs_rng(self) -> bool:
        """True when any sample carries a flip strike."""
        return any(point.flip_fraction > 0.0 for point in self.points)

    @property
    def max_offset(self) -> float:
        """Largest |sense_offset| the schedule ever applies [V]."""
        return max(abs(point.sense_offset) for point in self.points)

    def offset_at(self, time: float) -> float:
        """Sense offset [V] in effect at ``time`` (0 before the first sample)."""
        offset = 0.0
        for point in self.points:
            if point.time > time:
                break
            offset = point.sense_offset
        return offset


def _ramp_points(start, duration, peak, steps, down):
    """Piecewise-linear ramp 0 → peak (and, if ``down``, back to 0)."""
    points = []
    up_span = duration / 2.0 if down else duration
    for index in range(1, steps + 1):
        points.append(DriftPoint(
            time=start + up_span * index / steps,
            sense_offset=peak * index / steps,
        ))
    if down:
        for index in range(1, steps + 1):
            points.append(DriftPoint(
                time=start + up_span + up_span * index / steps,
                sense_offset=peak * (1.0 - index / steps),
            ))
    return tuple(points)


def temperature_ramp(
    start: float,
    duration: float,
    peak_offset: float,
    steps: int = 8,
) -> DriftScenario:
    """A thermal excursion: offset ramps 0 → ``peak_offset`` → 0.

    Heating widens the resistance distributions and skews the sense-amp
    operating point; the input-referred proxy is a piecewise-linear
    offset ramp over the first half of ``duration`` and a symmetric
    recovery over the second half.
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    return DriftScenario(
        name="temperature-ramp",
        points=_ramp_points(start, duration, peak_offset, steps, down=True),
    )


def field_disturbance_window(
    start: float,
    duration: float,
    offset: float,
    flip_fraction: float = 0.0,
) -> DriftScenario:
    """An external-field pulse: offset window plus an optional flip strike.

    The field shifts the sensed differential for as long as it is present
    and may flip a fraction of the stored free layers at onset; when the
    window closes the offset clears (the flips do not — they persist
    until a scrub rewrites the words).
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    return DriftScenario(
        name="field-window",
        points=(
            DriftPoint(time=start, sense_offset=offset, flip_fraction=flip_fraction),
            DriftPoint(time=start + duration, sense_offset=0.0),
        ),
    )


def aging_rolloff_shift(
    start: float,
    duration: float,
    final_offset: float,
    steps: int = 6,
) -> DriftScenario:
    """Accelerated aging: the roll-off reference shifts and stays shifted.

    A monotonic piecewise ramp from 0 to ``final_offset`` over
    ``duration`` that never recovers — the degenerate limit of the
    survey's aging mechanisms compressed into one trace.
    """
    if duration <= 0.0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    return DriftScenario(
        name="rolloff-shift",
        points=_ramp_points(start, duration, final_offset, steps, down=False),
    )


def sense_amp_drift_step(time: float, offset: float) -> DriftScenario:
    """A sense-amp trim walking away in one step (persists forever)."""
    return DriftScenario(
        name="sense-step",
        points=(DriftPoint(time=time, sense_offset=offset),),
    )


def _apply_point(backend, point: DriftPoint, rng, scenario_name: str) -> None:
    backend.set_drift_offset(point.sense_offset)
    flipped = 0
    if point.flip_fraction > 0.0:
        flipped = backend.strike_flips(point.flip_fraction, rng)
    if _obs.active():
        registry = _obs.get_registry()
        registry.inc("faults.drift.events", scenario=scenario_name)
        registry.set_gauge(
            "faults.drift.sense_offset_mv",
            point.sense_offset * 1e3,
            scenario=scenario_name,
        )
        if flipped:
            registry.inc(
                "faults.injected_cells", flipped, kind="external-field"
            )


def install_drift(
    engine,
    backend,
    scenario: DriftScenario,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Register a scenario's samples on the event calendar; returns the count.

    ``backend`` must expose ``set_drift_offset(offset)`` and (for flip
    strikes) ``strike_flips(fraction, rng)`` —
    :class:`~repro.service.controller.ArrayBackend` does.  Call before
    ``engine.run()``: samples are absolute-time events and the engine
    refuses to schedule into the past.  Offset changes consume no RNG;
    flip strikes draw only from the dedicated ``rng`` passed here, so the
    sensing stream is never perturbed and replays stay bit-exact.
    """
    if scenario.needs_rng and rng is None:
        raise ConfigurationError(
            f"scenario {scenario.name!r} carries flip strikes; "
            "install_drift needs a dedicated drift rng"
        )
    for point in scenario.points:
        engine.schedule_at(point.time, _apply_point, backend, point, rng, scenario.name)
    return len(scenario.points)
