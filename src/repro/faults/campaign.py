"""Fault-injection campaign: sweep fault rates, score the recovery ladder.

One campaign builds the paper's 16kb test-chip population (calibrated
device, test-chip variation), wraps it in SECDED words behind a
:class:`~repro.faults.recovery.RecoveryController`, writes a known random
pattern, strikes it with a configurable fault set at each rate, then reads
every word back and scores the outcome against ground truth:

* **recovered** — the word came back equal to what was written;
* **detected** — the ladder exhausted and failed loudly
  (:class:`~repro.errors.RetryExhaustedError`): the data is lost but the
  loss is *known*;
* **escaped** — the word came back wrong without any flag: silent data
  corruption, the only truly bad outcome.

Words are also classified by how many *hard* faulted bits they received
(stuck cells, disturb flips, power-failure destruction): a word with at
most one is within SECDED's guarantee — the campaign's acceptance metric
is the recovered fraction of those correctable words.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.array.array import STTRAMArray
from repro.array.repair import RepairPlan, allocate_repair
from repro.array.testchip import TESTCHIP_VARIATION
from repro.calibration import calibrate
from repro.calibration.targets import PAPER_TARGETS
from repro.core.base import SensingScheme
from repro.core.conventional import ConventionalSensing
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.core.retry import RetryPolicy
from repro.device.variation import CellPopulation, VariationModel
from repro.ecc.array import EccArray
from repro.errors import ConfigurationError, FaultError, RetryExhaustedError
from repro.faults.injector import FaultInjector, FaultMap
from repro.faults.models import (
    BitlineNoiseFault,
    PowerFailureFault,
    ReadDisturbFault,
    SenseOffsetDrift,
    StuckOpenFault,
    StuckShortFault,
)
from repro.faults.recovery import RecoveryController
from repro.obs import runtime as _obs
from repro.obs.runtime import profiled

__all__ = [
    "CampaignRow",
    "FaultCampaignResult",
    "build_scheme",
    "default_fault_models",
    "run_fault_campaign",
]


def default_fault_models(rate: float, transients: bool = True) -> Tuple:
    """The standard campaign fault set at one hard-fault rate.

    ``rate`` is split evenly between the two stuck defects; a quarter of
    it drives read-disturb flips.  ``transients`` additionally enables the
    analog nuisances (offset drift, bit-line noise) at fixed magnitudes.
    """
    models = [
        StuckShortFault(rate=rate / 2.0),
        StuckOpenFault(rate=rate / 2.0),
        ReadDisturbFault(rate=rate / 4.0),
    ]
    if transients:
        models.append(SenseOffsetDrift(sigma=1.0e-3))
        models.append(BitlineNoiseFault(sigma=0.5e-3))
    return tuple(models)


@dataclasses.dataclass(frozen=True)
class CampaignRow:
    """Outcome of one fault rate."""

    rate: float
    bits: int
    words: int
    injected_cells: int       #: permanently faulted cells (stuck short/open)
    disturbed_cells: int      #: read-disturb state flips
    power_failure_words: int  #: words hit by a mid-read power loss
    faulty_words: int         #: words with >= 1 hard-faulted bit
    correctable_words: int    #: faulty words within SECDED reach (1 bit)
    recovered_correctable: int
    recovered_faulty: int     #: faulty words delivered with the true value
    detected_words: int       #: losses flagged by RetryExhaustedError
    escaped_words: int        #: silent corruption (wrong value, no flag)
    tier_counts: Dict[str, int]
    spares_used: int          #: controller remaps performed
    repair_plan: Optional[RepairPlan] = None

    @property
    def recovery_fraction(self) -> float:
        """Recovered share of the correctable faulty words (1.0 when no
        word had a correctable fault)."""
        if self.correctable_words == 0:
            return 1.0
        return self.recovered_correctable / self.correctable_words


@dataclasses.dataclass(frozen=True)
class FaultCampaignResult:
    """A full rate sweep plus the acceptance gates."""

    scheme: str
    seed: int
    bits: int
    data_bits: int
    rows: Tuple[CampaignRow, ...]
    #: Deterministic metrics snapshot (``MetricsRegistry.snapshot`` without
    #: the wall-clock ``profile`` section) captured at the end of the sweep
    #: when observability was enabled; ``None`` otherwise.
    metrics: Optional[Dict[str, object]] = None

    @property
    def total_escaped(self) -> int:
        """Silently corrupted words summed over all rates."""
        return sum(row.escaped_words for row in self.rows)

    @property
    def min_recovery_fraction(self) -> float:
        """Worst per-rate recovery of correctable faults."""
        return min((row.recovery_fraction for row in self.rows), default=1.0)

    def check(self, min_recovery: float = 0.99, max_escaped: int = 0) -> None:
        """Gate a CI run: raise :class:`~repro.errors.FaultError` when the
        ladder under-recovers or lets silent corruption through."""
        if self.total_escaped > max_escaped:
            raise FaultError(
                f"{self.total_escaped} word(s) escaped silently "
                f"(allowed: {max_escaped})"
            )
        if self.min_recovery_fraction < min_recovery:
            raise FaultError(
                f"recovered only {self.min_recovery_fraction:.1%} of "
                f"correctable faults (required: {min_recovery:.0%})"
            )


def build_scheme(name: str, calibration, r_transistor: float) -> SensingScheme:
    """Construct one of the three paper schemes from a calibration.

    ``name`` is one of ``conventional`` / ``destructive`` /
    ``nondestructive``; the returned scheme carries the calibrated bias
    currents and beta ratios, matching what the campaign itself reads
    through (also used by the ``repro stats`` CLI workload).
    """
    targets = PAPER_TARGETS
    if name == "conventional":
        return ConventionalSensing(
            i_read=targets.i_read_max,
            nominal_cell=calibration.cell(r_transistor),
        )
    if name == "destructive":
        return DestructiveSelfReference(
            i_read2=targets.i_read_max, beta=calibration.beta_destructive
        )
    if name == "nondestructive":
        return NondestructiveSelfReference(
            i_read2=targets.i_read_max, beta=calibration.beta_nondestructive
        )
    raise ConfigurationError(
        f"unknown scheme {name!r}; expected conventional/destructive/nondestructive"
    )


#: Backwards-compatible alias (pre-observability name).
_build_scheme = build_scheme


def _hard_fault_bits(
    fault_map: FaultMap,
    disturbed: np.ndarray,
    destroyed: np.ndarray,
    word_bits: int,
    words: int,
) -> np.ndarray:
    """Per-word count of hard-faulted bits (stuck ∪ disturbed ∪ destroyed)."""
    mask = fault_map.fault_mask.copy()
    mask[disturbed] = True
    mask |= destroyed
    counts = np.bincount(
        np.nonzero(mask[: words * word_bits])[0] // word_bits, minlength=words
    )
    return counts[:words]


@profiled("faults.run_fault_campaign")
def run_fault_campaign(
    rates: Sequence[float] = (1.0e-4, 1.0e-3, 5.0e-3),
    bits: int = 16384,
    scheme: str = "nondestructive",
    policy: Optional[RetryPolicy] = None,
    seed: int = 2010,
    data_bits: int = 64,
    scrub_rounds: int = 2,
    spare_words: int = 8,
    variation: Optional[VariationModel] = None,
    transients: bool = True,
    power_failure_rate: float = 0.02,
    repair_spares: int = 4,
) -> FaultCampaignResult:
    """Sweep hard-fault rates over the 16kb test chip and score recovery.

    For each rate the campaign rebuilds the chip from its own seeded RNGs
    (build / fault / read streams are independent, so the fault draw never
    shifts the sensing draw stream), injects
    :func:`default_fault_models`, and reads every logical word through the
    full ladder.  The destructive scheme additionally suffers mid-read
    power failures at ``power_failure_rate`` per word — the non-volatility
    hole the paper's nondestructive scheme closes, visible here as
    destroyed words the ladder must flag.

    ``repair_spares`` row/column spares per side are fed to
    :func:`~repro.array.repair.allocate_repair` over the stuck-cell map,
    reporting whether classic redundancy could also have absorbed the hard
    defects.
    """
    if bits < 1:
        raise ConfigurationError("bits must be positive")
    if policy is None:
        policy = RetryPolicy(max_attempts=3, backoff_ns=5.0, current_escalation=0.1)
    if variation is None:
        variation = TESTCHIP_VARIATION
    calibration = calibrate()
    base_scheme = build_scheme(scheme, calibration, PAPER_TARGETS.r_transistor)
    destructive = scheme == "destructive"
    metered = _obs.active()

    rows = []
    for rate_index, rate in enumerate(rates):
        if rate < 0.0:
            raise ConfigurationError(f"fault rate must be non-negative, got {rate}")
        rng_build = np.random.default_rng((seed, rate_index, 0))
        rng_fault = np.random.default_rng((seed, rate_index, 1))
        rng_read = np.random.default_rng((seed, rate_index, 2))

        population = CellPopulation.sample(
            bits,
            variation,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng_build,
            r_tr_nominal=PAPER_TARGETS.r_transistor,
        )
        array = STTRAMArray(population)
        memory = EccArray(array, data_bits=data_bits)
        controller = RecoveryController(
            memory, policy, scrub_rounds=scrub_rounds, spare_words=spare_words
        )
        word_bits = memory.codec.codeword_bits
        words = controller.size_words

        truth = []
        for address in range(words):
            value = int.from_bytes(rng_build.bytes((data_bits + 7) // 8), "little")
            value &= (1 << data_bits) - 1
            truth.append(value)
            controller.write_word(address, value)

        models = list(default_fault_models(rate, transients=transients))
        if destructive and power_failure_rate > 0.0:
            models.append(PowerFailureFault(rate=power_failure_rate))
        injector = FaultInjector(models, rng_fault)

        fault_map = injector.inject_array(array)
        disturbed = injector.disturb_states(array._states)

        # Power failures strike *prior* interrupted reads: the destructive
        # scheme erased (or half-restored) the word and the supply dropped.
        # The recovery read afterwards sees whatever survived.
        destroyed = np.zeros(bits, dtype=bool)
        power_failure_words = 0
        if destructive:
            for address in range(words):
                phase = injector.power_failure_phase()
                if phase is None:
                    continue
                power_failure_words += 1
                base = address * word_bits
                span = np.arange(base, base + word_bits)
                before = array._states[span].copy()
                array.read_bits(span, base_scheme, rng_fault, power_failure_at=phase)
                destroyed[span] |= array._states[span] != before

        hard_counts = _hard_fault_bits(
            fault_map, disturbed, destroyed, word_bits, words
        )

        if metered:
            _obs.get_registry().set_gauge("campaign.rate", float(rate))

        recovered_faulty = 0
        recovered_correctable = 0
        detected = 0
        escaped = 0
        for address in range(words):
            operation_scheme = injector.perturb_scheme(base_scheme)
            try:
                recovered = controller.read_word(address, operation_scheme, rng_read)
            except RetryExhaustedError:
                detected += 1
                if metered:
                    _obs.get_registry().inc("campaign.words", outcome="detected")
                continue
            if recovered.value == truth[address]:
                if hard_counts[address] >= 1:
                    recovered_faulty += 1
                    if hard_counts[address] == 1:
                        recovered_correctable += 1
                if metered:
                    _obs.get_registry().inc("campaign.words", outcome="recovered")
            else:
                escaped += 1
                if metered:
                    _obs.get_registry().inc("campaign.words", outcome="escaped")

        repair_plan = None
        if repair_spares > 0:
            columns = 128 if bits % 128 == 0 else bits
            repair_plan = allocate_repair(
                fault_map.fault_mask,
                rows=bits // columns,
                columns=columns,
                spare_rows=repair_spares,
                spare_columns=repair_spares,
            )

        rows.append(CampaignRow(
            rate=float(rate),
            bits=bits,
            words=words,
            injected_cells=fault_map.count,
            disturbed_cells=int(disturbed.size),
            power_failure_words=power_failure_words,
            faulty_words=int(np.count_nonzero(hard_counts >= 1)),
            correctable_words=int(np.count_nonzero(hard_counts == 1)),
            recovered_correctable=recovered_correctable,
            recovered_faulty=recovered_faulty,
            detected_words=detected,
            escaped_words=escaped,
            tier_counts=controller.statistics,
            spares_used=spare_words - controller.spares_remaining,
            repair_plan=repair_plan,
        ))

    return FaultCampaignResult(
        scheme=scheme,
        seed=seed,
        bits=bits,
        data_bits=data_bits,
        rows=tuple(rows),
        metrics=_obs.get_registry().snapshot(profile=False) if metered else None,
    )
