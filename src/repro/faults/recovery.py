"""Graceful-degradation recovery ladder: retry → ECC → scrub → repair.

A memory controller never gives up on a word after one bad read.  This
module composes the mechanisms the lower layers already provide into the
standard escalation ladder:

1. **Retry** — metastable bits are re-sensed under the word's
   :class:`~repro.core.retry.RetryPolicy` *before* the decoder sees them;
2. **ECC** — the SECDED decoder corrects one remaining hard error;
3. **Scrub** — a detected-uncorrectable word is re-read from scratch
   (transient noise decorrelates between operations) and, once it decodes,
   rewritten clean;
4. **Repair** — a word that recovers but still carries a hard defect is
   migrated to a spare physical word and its address remapped, so the next
   soft error does not pair with the stuck bit.

Only when every tier is spent — the word stays uncorrectable through all
scrub rounds — does the controller raise
:class:`~repro.errors.RetryExhaustedError`; the caller learns the address
and can fail the access loudly instead of consuming silently wrong data.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import SensingScheme
from repro.core.retry import RetryPolicy
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigurationError, FaultError, RetryExhaustedError
from repro.obs import runtime as _obs
from repro.obs.trace import SPARE_REPAIR, WORD_LOST

__all__ = ["RecoveryTier", "RecoveredWord", "LostWord", "RecoveryController"]


class RecoveryTier(enum.Enum):
    """Which rung of the ladder produced the returned data."""

    CLEAN = "clean"    #: first read decoded clean, no retries needed
    RETRY = "retry"    #: re-sensing resolved it before the decoder
    ECC = "ecc"        #: the SECDED decoder corrected one error
    SCRUB = "scrub"    #: a fresh re-read recovered it; word rewritten
    REPAIR = "repair"  #: recovered and migrated to a spare word


@dataclasses.dataclass(frozen=True)
class RecoveredWord:
    """One logical word delivered through the recovery ladder."""

    address: int
    value: int
    tier: RecoveryTier
    status: DecodeStatus
    attempts: int      #: worst per-bit sensing attempts of the final read
    rereads: int = 0   #: scrub-tier re-reads performed (0 for tiers ≤ ECC)
    remapped: bool = False  #: word now lives on a spare physical word

    @property
    def degraded(self) -> bool:
        """True when anything beyond a clean first read was needed."""
        return self.tier is not RecoveryTier.CLEAN

    @property
    def failed(self) -> bool:
        """A recovered word is, by definition, not lost."""
        return False


@dataclasses.dataclass(frozen=True)
class LostWord:
    """One word whose read exhausted every recovery tier.

    The batched entry point (:meth:`RecoveryController.read_words`) returns
    these in-place instead of raising, so one unrecoverable word does not
    abort the rest of its coalesced group; ``error`` carries the
    :class:`~repro.errors.RetryExhaustedError` the scalar path would have
    raised.
    """

    address: int
    attempts: int
    error: RetryExhaustedError

    @property
    def failed(self) -> bool:
        """Mirror of :attr:`RecoveredWord.failed` for uniform handling."""
        return True


class RecoveryController:
    """Word-level recovery over an :class:`~repro.ecc.array.EccArray`.

    Parameters
    ----------
    memory:
        The ECC-protected word store.  The controller reserves the *top*
        ``spare_words`` physical words as repair spares; the remaining
        words are the logical address space.
    policy:
        Retry policy for every sensing pass (default: 3 attempts, 5 ns
        exponential backoff).
    scrub_rounds:
        Fresh re-reads attempted on a detected-uncorrectable word before
        declaring the data lost.
    spare_words:
        Physical words held back for remapping chronically bad words.
    """

    def __init__(
        self,
        memory: EccArray,
        policy: Optional[RetryPolicy] = None,
        scrub_rounds: int = 2,
        spare_words: int = 0,
    ):
        if scrub_rounds < 0:
            raise ConfigurationError("scrub_rounds must be non-negative")
        if spare_words < 0:
            raise ConfigurationError("spare_words must be non-negative")
        if memory.size_words - spare_words < 1:
            raise ConfigurationError(
                f"{spare_words} spare words leave no addressable words in a "
                f"{memory.size_words}-word memory"
            )
        self.memory = memory
        self.policy = policy if policy is not None else RetryPolicy()
        self.scrub_rounds = int(scrub_rounds)
        self.size_words = memory.size_words - spare_words
        #: logical address → spare physical word
        self._remap: Dict[int, int] = {}
        # Spares are handed out bottom-up from the reserved top region.
        self._free_spares: List[int] = list(
            range(memory.size_words - 1, self.size_words - 1, -1)
        )
        self.tier_counts: Dict[RecoveryTier, int] = {t: 0 for t in RecoveryTier}
        self.words_lost = 0  #: reads that exhausted every tier

    # ------------------------------------------------------------------
    # Address plumbing
    # ------------------------------------------------------------------
    def physical_address(self, address: int) -> int:
        """Where ``address`` currently lives (identity unless remapped)."""
        self._check_address(address)
        return self._remap.get(address, address)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )

    @property
    def spares_remaining(self) -> int:
        """Unused spare words."""
        return len(self._free_spares)

    @property
    def remapped_words(self) -> Dict[int, int]:
        """Current logical → spare mapping (copy)."""
        return dict(self._remap)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Write through the remap table."""
        self.memory.write_word(self.physical_address(address), value)

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> RecoveredWord:
        """Read one word, escalating through the ladder as needed.

        Raises
        ------
        RetryExhaustedError
            When the word stays detected-uncorrectable through every scrub
            round — the data is lost and the caller must not use it.
        """
        physical = self.physical_address(address)
        result = self.memory.read_word(
            physical, scheme, rng, retry_policy=self.policy, **kwargs
        )
        if result.reliable:
            if result.status is DecodeStatus.CORRECTED:
                tier = RecoveryTier.ECC
            elif result.attempts > 1:
                tier = RecoveryTier.RETRY
            else:
                tier = RecoveryTier.CLEAN
            return self._record(
                RecoveredWord(address, result.value, tier, result.status, result.attempts)
            )

        # Scrub tier: transient corruption decorrelates between operations,
        # so read the physical word again from scratch.
        rereads = 0
        for _ in range(self.scrub_rounds):
            rereads += 1
            result = self.memory.read_word(
                physical, scheme, rng, retry_policy=self.policy, **kwargs
            )
            if result.reliable:
                return self._scrub_recovered(
                    address, physical, result, rereads, scheme, rng, **kwargs
                )

        # Every tier spent: the data is unrecoverable.  Fail loudly.
        self.words_lost += 1
        if _obs.active():
            _obs.get_registry().inc("recovery.words_lost")
            _obs.trace(WORD_LOST, address=address, rereads=rereads)
        raise RetryExhaustedError(
            f"word {address} (physical {physical}) stayed uncorrectable "
            f"through retry, ECC, and {rereads} scrub round(s)",
            address=address,
            attempts=result.attempts,
        )

    def read_words(
        self,
        addresses: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> List[Union[RecoveredWord, LostWord]]:
        """Read a coalesced group of distinct words through the ladder.

        The whole group is first attempted as ONE fused sensing pass
        (:meth:`~repro.ecc.array.EccArray.try_read_words` with
        ``require_reliable=True``): when no word needs anything beyond a
        clean-or-ECC-corrected first read — the overwhelmingly common case
        — the group costs a single vectorized kernel call.  If *any* word
        would escalate (retry, scrub, or repair), the pass is rewound and
        the group *splits at the escalating words* (the probe's hints):
        the clean segments between them still commit fused, and only the
        escalating words reach the scalar :meth:`read_word` ladder.
        Because processing stays strictly in address order and every
        committed fused slice is draw-equal to the scalar loop over that
        slice, the result stream, the tier counters, and every RNG draw
        are bit-exact with a scalar loop over ``addresses`` in order —
        including spare remaps an earlier word's repair applies to a later
        word's lookup (physical addresses are resolved per slice, after
        the preceding slice finished).

        Unlike :meth:`read_word`, an unrecoverable word does not raise: it
        appears as a :class:`LostWord` in the result list (the scalar
        loop's exception, captured), and the remaining words of the group
        are still served.
        """
        addresses = list(addresses)
        physicals = [self.physical_address(address) for address in addresses]
        fused, bad = self.memory.probe_words(
            physicals, scheme, rng,
            retry_policy=self.policy, require_reliable=True, **kwargs
        )
        if fused is not None:
            words: List[Union[RecoveredWord, LostWord]] = []
            for address, result in zip(addresses, fused):
                tier = (
                    RecoveryTier.ECC
                    if result.status is DecodeStatus.CORRECTED
                    else RecoveryTier.CLEAN
                )
                words.append(self._record(RecoveredWord(
                    address, result.value, tier, result.status, result.attempts
                )))
            return words
        words: List[Union[RecoveredWord, LostWord]] = []
        if not bad:
            # The group cannot fuse at all (per-bit array kwargs): plain
            # scalar replay.
            for address in addresses:
                words.append(self._read_word_caught(address, scheme, rng, **kwargs))
            return words
        start = 0
        for index in bad:
            if index > start:
                words.extend(self.read_words(
                    addresses[start:index], scheme, rng, **kwargs
                ))
            words.append(self._read_word_caught(
                addresses[index], scheme, rng, **kwargs
            ))
            start = index + 1
        if start < len(addresses):
            words.extend(self.read_words(
                addresses[start:], scheme, rng, **kwargs
            ))
        return words

    def _read_word_caught(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> Union[RecoveredWord, LostWord]:
        """One scalar ladder read with the exhaustion exception captured."""
        try:
            return self.read_word(address, scheme, rng, **kwargs)
        except RetryExhaustedError as error:
            return LostWord(
                address=address,
                attempts=max(1, error.attempts),
                error=error,
            )

    def _scrub_recovered(
        self,
        address: int,
        physical: int,
        result,
        rereads: int,
        scheme: SensingScheme,
        rng,
        **kwargs,
    ) -> RecoveredWord:
        """A scrub re-read decoded: rewrite the word clean, then decide
        whether the physical word is healthy enough to keep."""
        self.memory.write_word(physical, result.value)
        verify = self.memory.read_word(
            physical, scheme, rng, retry_policy=self.policy, **kwargs
        )
        if verify.status is DecodeStatus.CLEAN:
            return self._record(RecoveredWord(
                address, result.value, RecoveryTier.SCRUB, result.status,
                result.attempts, rereads=rereads,
            ))
        # The freshly rewritten word still decodes dirty: a hard defect
        # lives in these cells.  Migrate to a spare while the data is good.
        remapped = self._remap_to_spare(address, result.value)
        tier = RecoveryTier.REPAIR if remapped else RecoveryTier.SCRUB
        return self._record(RecoveredWord(
            address, result.value, tier, result.status,
            result.attempts, rereads=rereads, remapped=remapped,
        ))

    def _remap_to_spare(self, address: int, value: int) -> bool:
        """Move a logical word onto a fresh spare; False when none left."""
        if not self._free_spares:
            return False
        if address in self._remap:
            # Already on a spare that went bad too; it is consumed for good.
            pass
        spare = self._free_spares.pop()
        self._remap[address] = spare
        self.memory.write_word(spare, value)
        if _obs.active():
            _obs.get_registry().inc("recovery.spares_used")
            _obs.trace(SPARE_REPAIR, address=address, spare=spare)
        return True

    def _record(self, word: RecoveredWord) -> RecoveredWord:
        self.tier_counts[word.tier] += 1
        if _obs.active():
            _obs.get_registry().inc("recovery.words", tier=word.tier.value)
        return word

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def statistics(self) -> Dict[str, int]:
        """Ladder-tier counters plus losses, keyed by tier value."""
        stats = {tier.value: count for tier, count in self.tier_counts.items()}
        stats["lost"] = self.words_lost
        return stats

    def require_healthy(self) -> None:
        """Raise :class:`~repro.errors.FaultError` if any read ever
        exhausted the ladder (a convenience for campaign gates)."""
        if self.words_lost:
            raise FaultError(
                f"{self.words_lost} word(s) lost despite the recovery ladder"
            )
