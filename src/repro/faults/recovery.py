"""Graceful-degradation recovery ladder: retry → ECC → scrub → repair.

A memory controller never gives up on a word after one bad read.  This
module composes the mechanisms the lower layers already provide into the
standard escalation ladder:

1. **Retry** — metastable bits are re-sensed under the word's
   :class:`~repro.core.retry.RetryPolicy` *before* the decoder sees them;
2. **ECC** — the SECDED decoder corrects one remaining hard error;
3. **Scrub** — a detected-uncorrectable word is re-read from scratch
   (transient noise decorrelates between operations) and, once it decodes,
   rewritten clean;
4. **Repair** — a word that recovers but still carries a hard defect is
   migrated to a spare physical word and its address remapped, so the next
   soft error does not pair with the stuck bit.

Only when every tier is spent — the word stays uncorrectable through all
scrub rounds — does the controller raise
:class:`~repro.errors.RetryExhaustedError`; the caller learns the address
and can fail the access loudly instead of consuming silently wrong data.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import SensingScheme
from repro.core.retry import RetryPolicy
from repro.ecc.array import EccArray
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigurationError, FaultError, RetryExhaustedError
from repro.obs import runtime as _obs
from repro.obs.trace import SPARE_REPAIR, WORD_LOST

__all__ = ["RecoveryTier", "RecoveredWord", "RecoveryController"]


class RecoveryTier(enum.Enum):
    """Which rung of the ladder produced the returned data."""

    CLEAN = "clean"    #: first read decoded clean, no retries needed
    RETRY = "retry"    #: re-sensing resolved it before the decoder
    ECC = "ecc"        #: the SECDED decoder corrected one error
    SCRUB = "scrub"    #: a fresh re-read recovered it; word rewritten
    REPAIR = "repair"  #: recovered and migrated to a spare word


@dataclasses.dataclass(frozen=True)
class RecoveredWord:
    """One logical word delivered through the recovery ladder."""

    address: int
    value: int
    tier: RecoveryTier
    status: DecodeStatus
    attempts: int      #: worst per-bit sensing attempts of the final read
    rereads: int = 0   #: scrub-tier re-reads performed (0 for tiers ≤ ECC)
    remapped: bool = False  #: word now lives on a spare physical word

    @property
    def degraded(self) -> bool:
        """True when anything beyond a clean first read was needed."""
        return self.tier is not RecoveryTier.CLEAN


class RecoveryController:
    """Word-level recovery over an :class:`~repro.ecc.array.EccArray`.

    Parameters
    ----------
    memory:
        The ECC-protected word store.  The controller reserves the *top*
        ``spare_words`` physical words as repair spares; the remaining
        words are the logical address space.
    policy:
        Retry policy for every sensing pass (default: 3 attempts, 5 ns
        exponential backoff).
    scrub_rounds:
        Fresh re-reads attempted on a detected-uncorrectable word before
        declaring the data lost.
    spare_words:
        Physical words held back for remapping chronically bad words.
    """

    def __init__(
        self,
        memory: EccArray,
        policy: Optional[RetryPolicy] = None,
        scrub_rounds: int = 2,
        spare_words: int = 0,
    ):
        if scrub_rounds < 0:
            raise ConfigurationError("scrub_rounds must be non-negative")
        if spare_words < 0:
            raise ConfigurationError("spare_words must be non-negative")
        if memory.size_words - spare_words < 1:
            raise ConfigurationError(
                f"{spare_words} spare words leave no addressable words in a "
                f"{memory.size_words}-word memory"
            )
        self.memory = memory
        self.policy = policy if policy is not None else RetryPolicy()
        self.scrub_rounds = int(scrub_rounds)
        self.size_words = memory.size_words - spare_words
        #: logical address → spare physical word
        self._remap: Dict[int, int] = {}
        # Spares are handed out bottom-up from the reserved top region.
        self._free_spares: List[int] = list(
            range(memory.size_words - 1, self.size_words - 1, -1)
        )
        self.tier_counts: Dict[RecoveryTier, int] = {t: 0 for t in RecoveryTier}
        self.words_lost = 0  #: reads that exhausted every tier

    # ------------------------------------------------------------------
    # Address plumbing
    # ------------------------------------------------------------------
    def physical_address(self, address: int) -> int:
        """Where ``address`` currently lives (identity unless remapped)."""
        self._check_address(address)
        return self._remap.get(address, address)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )

    @property
    def spares_remaining(self) -> int:
        """Unused spare words."""
        return len(self._free_spares)

    @property
    def remapped_words(self) -> Dict[int, int]:
        """Current logical → spare mapping (copy)."""
        return dict(self._remap)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Write through the remap table."""
        self.memory.write_word(self.physical_address(address), value)

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> RecoveredWord:
        """Read one word, escalating through the ladder as needed.

        Raises
        ------
        RetryExhaustedError
            When the word stays detected-uncorrectable through every scrub
            round — the data is lost and the caller must not use it.
        """
        physical = self.physical_address(address)
        result = self.memory.read_word(
            physical, scheme, rng, retry_policy=self.policy, **kwargs
        )
        if result.reliable:
            if result.status is DecodeStatus.CORRECTED:
                tier = RecoveryTier.ECC
            elif result.attempts > 1:
                tier = RecoveryTier.RETRY
            else:
                tier = RecoveryTier.CLEAN
            return self._record(
                RecoveredWord(address, result.value, tier, result.status, result.attempts)
            )

        # Scrub tier: transient corruption decorrelates between operations,
        # so read the physical word again from scratch.
        rereads = 0
        for _ in range(self.scrub_rounds):
            rereads += 1
            result = self.memory.read_word(
                physical, scheme, rng, retry_policy=self.policy, **kwargs
            )
            if result.reliable:
                return self._scrub_recovered(
                    address, physical, result, rereads, scheme, rng, **kwargs
                )

        # Every tier spent: the data is unrecoverable.  Fail loudly.
        self.words_lost += 1
        if _obs.active():
            _obs.get_registry().inc("recovery.words_lost")
            _obs.trace(WORD_LOST, address=address, rereads=rereads)
        raise RetryExhaustedError(
            f"word {address} (physical {physical}) stayed uncorrectable "
            f"through retry, ECC, and {rereads} scrub round(s)",
            address=address,
            attempts=result.attempts,
        )

    def _scrub_recovered(
        self,
        address: int,
        physical: int,
        result,
        rereads: int,
        scheme: SensingScheme,
        rng,
        **kwargs,
    ) -> RecoveredWord:
        """A scrub re-read decoded: rewrite the word clean, then decide
        whether the physical word is healthy enough to keep."""
        self.memory.write_word(physical, result.value)
        verify = self.memory.read_word(
            physical, scheme, rng, retry_policy=self.policy, **kwargs
        )
        if verify.status is DecodeStatus.CLEAN:
            return self._record(RecoveredWord(
                address, result.value, RecoveryTier.SCRUB, result.status,
                result.attempts, rereads=rereads,
            ))
        # The freshly rewritten word still decodes dirty: a hard defect
        # lives in these cells.  Migrate to a spare while the data is good.
        remapped = self._remap_to_spare(address, result.value)
        tier = RecoveryTier.REPAIR if remapped else RecoveryTier.SCRUB
        return self._record(RecoveredWord(
            address, result.value, tier, result.status,
            result.attempts, rereads=rereads, remapped=remapped,
        ))

    def _remap_to_spare(self, address: int, value: int) -> bool:
        """Move a logical word onto a fresh spare; False when none left."""
        if not self._free_spares:
            return False
        if address in self._remap:
            # Already on a spare that went bad too; it is consumed for good.
            pass
        spare = self._free_spares.pop()
        self._remap[address] = spare
        self.memory.write_word(spare, value)
        if _obs.active():
            _obs.get_registry().inc("recovery.spares_used")
            _obs.trace(SPARE_REPAIR, address=address, spare=spare)
        return True

    def _record(self, word: RecoveredWord) -> RecoveredWord:
        self.tier_counts[word.tier] += 1
        if _obs.active():
            _obs.get_registry().inc("recovery.words", tier=word.tier.value)
        return word

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def statistics(self) -> Dict[str, int]:
        """Ladder-tier counters plus losses, keyed by tier value."""
        stats = {tier.value: count for tier, count in self.tier_counts.items()}
        stats["lost"] = self.words_lost
        return stats

    def require_healthy(self) -> None:
        """Raise :class:`~repro.errors.FaultError` if any read ever
        exhausted the ladder (a convenience for campaign gates)."""
        if self.words_lost:
            raise FaultError(
                f"{self.words_lost} word(s) lost despite the recovery ladder"
            )
