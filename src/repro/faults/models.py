"""Composable fault models for STT-RAM arrays.

The taxonomy follows the STT-RAM testing literature (e.g. Wu et al.,
"Testing STT-RAM"): *hard* defects of the MTJ stack — a pinhole short
through the MgO barrier or an open contact, both of which destroy the
resistance split the read relies on — plus *transient* mechanisms the
sensing path itself introduces: read-disturb flips, sense-amplifier offset
drift with aging, bit-line coupling noise, and (for the destructive
self-reference scheme) power loss inside the read's erase/write-back
window.

Every model is a small frozen dataclass so fault campaigns are declarative:
build the list of models, hand it to a
:class:`~repro.faults.injector.FaultInjector`, and the injector owns all
randomness.  Permanent models mutate a
:class:`~repro.device.variation.CellPopulation`'s parameter arrays (so the
scalar and vectorized read paths see exactly the same defect) or a
standalone :class:`~repro.core.cell.Cell1T1J`; transient models expose
draw hooks the injector calls per read operation.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

import numpy as np

from repro.core.cell import Cell1T1J
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = [
    "FaultKind",
    "StuckShortFault",
    "StuckOpenFault",
    "TransitionFault",
    "ReadDisturbFault",
    "ReadDisturbProneFault",
    "SenseOffsetDrift",
    "BitlineNoiseFault",
    "PowerFailureFault",
    "STUCK_TMR_RESIDUAL",
]

#: Residual fractional resistance split left on a stuck junction.  A truly
#: shorted/open MTJ has no state dependence at all; the model keeps an
#: (electrically negligible) 0.01% split so a stuck cell still materializes
#: as a valid :class:`~repro.device.mtj.MTJParams` on the scalar read path.
STUCK_TMR_RESIDUAL = 1.0e-4


class FaultKind(enum.Enum):
    """Classification of every fault model in this package."""

    STUCK_SHORT = "stuck-short"          #: MgO pinhole: both states ~short
    STUCK_OPEN = "stuck-open"            #: broken contact: both states open
    TRANSITION_UP = "transition-up"      #: cell cannot switch 0 → 1
    TRANSITION_DOWN = "transition-down"  #: cell cannot switch 1 → 0
    READ_DISTURB = "read-disturb"        #: read current flipped the free layer
    SENSE_MARGIN = "sense-margin"        #: marginal/metastable sensing
    SENSE_OFFSET_DRIFT = "sense-offset-drift"  #: aged sense-amp offset
    BITLINE_NOISE = "bitline-noise"      #: transient bit-line coupling noise
    POWER_FAILURE = "power-failure"      #: supply lost mid destructive read


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"fault rate must lie in [0, 1], got {rate}")


def _check_sigma(sigma: float) -> None:
    if sigma < 0.0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")


@dataclasses.dataclass(frozen=True)
class _StuckFault:
    """Shared machinery of the two hard MTJ defects: pin both resistance
    states to ``resistance`` and remove the current roll-off, so the cell
    carries no readable state regardless of the sensing scheme."""

    rate: float
    resistance: float

    #: permanent faults survive for the campaign; transient ones re-draw
    permanent = True

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.resistance <= 0.0:
            raise ConfigurationError(
                f"stuck resistance must be positive, got {self.resistance}"
            )

    def select(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask of the cells this model strikes."""
        return rng.random(size) < self.rate

    def apply_population(self, population: CellPopulation, mask: np.ndarray) -> None:
        """Pin the masked bits' resistance arrays (both read paths see it)."""
        population.r_low0[mask] = self.resistance
        population.r_high0[mask] = self.resistance * (1.0 + STUCK_TMR_RESIDUAL)
        population.dr_low_max[mask] = 0.0
        population.dr_high_max[mask] = 0.0

    def apply_cell(self, cell: Cell1T1J) -> None:
        """Pin a standalone cell's junction (the scalar read path)."""
        cell.mtj.params = cell.mtj.params.replace(
            r_low=self.resistance,
            r_high=self.resistance * (1.0 + STUCK_TMR_RESIDUAL),
            dr_low_max=0.0,
            dr_high_max=0.0,
        )


@dataclasses.dataclass(frozen=True)
class StuckShortFault(_StuckFault):
    """Pinhole short through the MgO barrier: the junction reads as a few
    hundred ohms in both states, far below any healthy ``R_L``."""

    rate: float = 1.0e-3
    resistance: float = 200.0
    kind = FaultKind.STUCK_SHORT


@dataclasses.dataclass(frozen=True)
class StuckOpenFault(_StuckFault):
    """Open MTJ contact: both states look like a near-open circuit."""

    rate: float = 1.0e-3
    resistance: float = 5.0e5
    kind = FaultKind.STUCK_OPEN


@dataclasses.dataclass(frozen=True)
class TransitionFault:
    """The cell cannot complete a write transition in one direction.

    The STT-MRAM testing literature's *transition fault* (TF): a weak or
    pinned free layer whose switching threshold exceeds the write driver's
    current in one polarity, so a ``w1`` on a "0" cell (``direction="up"``)
    or a ``w0`` on a "1" cell (``direction="down"``) leaves the state
    unchanged.  The junction is *electrically healthy at read* — both
    resistance states and margins look nominal — which is exactly why a
    parametric screen misses it and a march test (write, then read back)
    is required.
    """

    rate: float = 1.0e-3
    direction: str = "up"

    permanent = True

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.direction not in ("up", "down"):
            raise ConfigurationError(
                f"direction must be 'up' or 'down', got {self.direction!r}"
            )

    @property
    def kind(self) -> FaultKind:
        """Direction-specific kind (MATS+ detects only the up variant)."""
        if self.direction == "up":
            return FaultKind.TRANSITION_UP
        return FaultKind.TRANSITION_DOWN

    def select(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask of the cells this model strikes."""
        return rng.random(size) < self.rate

    def apply_population(self, population: CellPopulation, mask: np.ndarray) -> None:
        """No electrical signature: the defect lives in the write path."""

    def apply_cell(self, cell: Cell1T1J) -> None:
        """No electrical signature on the standalone cell either."""


@dataclasses.dataclass(frozen=True)
class ReadDisturbProneFault:
    """A cell whose free layer flips after repeated reads without a write.

    Unlike :class:`ReadDisturbFault` (an *accumulated* per-campaign flip
    probability over the whole population), this is a *cell-level defect*:
    a low-barrier bit that deterministically loses a stored "1" once
    ``threshold`` consecutive reads have passed since it was last written
    (the read current is parallelizing, so only the anti-parallel state is
    at risk).  Single-read march elements never trip it — detecting these
    cells is what the hammering read elements of the disturb-aware march
    variant are for.
    """

    rate: float = 1.0e-3
    threshold: int = 2  #: reads-since-write count at which the "1" is lost
    kind = FaultKind.READ_DISTURB
    permanent = True

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.threshold < 1:
            raise ConfigurationError(
                f"disturb threshold must be >= 1, got {self.threshold}"
            )

    def select(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask of the cells this model strikes."""
        return rng.random(size) < self.rate

    def apply_population(self, population: CellPopulation, mask: np.ndarray) -> None:
        """No static electrical signature: margins look nominal."""

    def apply_cell(self, cell: Cell1T1J) -> None:
        """No static electrical signature on the standalone cell."""

    def flip_mask(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """No per-operation transient flips (the defect needs read history;
        campaigns treating it as a transient see it as inert)."""
        return np.zeros(size, dtype=bool)


@dataclasses.dataclass(frozen=True)
class ReadDisturbFault:
    """The read current itself flipped the free layer of some cells.

    Modelled as an accumulated per-cell flip probability (the integral of
    many disturb-prone reads since the data was last written), applied to
    the stored states before the campaign's recovery reads.
    """

    rate: float = 1.0e-4
    kind = FaultKind.READ_DISTURB
    permanent = False

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def flip_mask(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask of the cells whose stored bit flipped."""
        return rng.random(size) < self.rate


@dataclasses.dataclass(frozen=True)
class SenseOffsetDrift:
    """Aging drift of the sense amplifier's residual offset.

    The auto-zero loop cancels the *sampled* offset; charge trapping and
    NBTI slowly move the true offset between calibrations.  The injector
    draws one drift per campaign (it is quasi-static on read timescales)
    and applies it to every comparison through the scheme's sense
    amplifier.
    """

    sigma: float = 2.0e-3
    kind = FaultKind.SENSE_OFFSET_DRIFT
    permanent = False

    def __post_init__(self) -> None:
        _check_sigma(self.sigma)

    def draw(self, rng: np.random.Generator) -> float:
        """One quasi-static drift value [V]."""
        return float(rng.normal(0.0, self.sigma))


@dataclasses.dataclass(frozen=True)
class BitlineNoiseFault:
    """Transient coupling noise on the sensed bit line.

    Each read operation sees one fresh noise sample [V] added to the
    differential input — unlike :class:`SenseOffsetDrift` it decorrelates
    between attempts, which is exactly why a retry (after the policy's
    backoff) can succeed where the first read failed.
    """

    sigma: float = 1.0e-3
    kind = FaultKind.BITLINE_NOISE
    permanent = False

    def __post_init__(self) -> None:
        _check_sigma(self.sigma)

    def draw(self, rng: np.random.Generator) -> float:
        """One per-operation noise sample [V]."""
        return float(rng.normal(0.0, self.sigma))


@dataclasses.dataclass(frozen=True)
class PowerFailureFault:
    """Supply loss inside the destructive scheme's read window.

    The destructive self-reference read erases the cell before the compare
    and only restores it in the write-back — a power failure between those
    points leaves the stored data destroyed (the non-volatility hole the
    paper's nondestructive scheme closes).  With probability ``rate`` per
    read operation the injector aborts the read at a uniformly drawn phase.
    """

    rate: float = 1.0e-2
    phases: Tuple[str, ...] = ("after_erase", "after_second_read", "after_compare")
    kind = FaultKind.POWER_FAILURE
    permanent = False

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not self.phases:
            raise ConfigurationError("phases must not be empty")

    def draw_phase(self, rng: np.random.Generator) -> Optional[str]:
        """The phase this operation's power failure hits, or ``None``."""
        if rng.random() >= self.rate:
            return None
        return self.phases[int(rng.integers(0, len(self.phases)))]
