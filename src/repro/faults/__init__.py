"""Fault injection and recovery for the STT-RAM model.

The paper's schemes are judged on *sense margin*; a real memory also has
to survive defects and transients.  This package provides composable,
RNG-seeded fault models (stuck MTJs, read-disturb flips, sense-offset
drift, bit-line noise, destructive-read power failures), an injector that
applies them to cells, populations, or arrays, the retry → ECC → scrub →
repair recovery ladder, and a campaign runner sweeping fault rates on the
16kb test chip while scoring detected / corrected / escaped errors.
"""

from repro.faults.campaign import (
    CampaignRow,
    FaultCampaignResult,
    default_fault_models,
    run_fault_campaign,
)
from repro.faults.injector import FaultInjector, FaultMap
from repro.faults.models import (
    BitlineNoiseFault,
    FaultKind,
    PowerFailureFault,
    ReadDisturbFault,
    SenseOffsetDrift,
    StuckOpenFault,
    StuckShortFault,
)
from repro.faults.recovery import RecoveredWord, RecoveryController, RecoveryTier

__all__ = [
    "FaultKind",
    "StuckShortFault",
    "StuckOpenFault",
    "ReadDisturbFault",
    "SenseOffsetDrift",
    "BitlineNoiseFault",
    "PowerFailureFault",
    "FaultInjector",
    "FaultMap",
    "RecoveryTier",
    "RecoveredWord",
    "RecoveryController",
    "CampaignRow",
    "FaultCampaignResult",
    "default_fault_models",
    "run_fault_campaign",
]
