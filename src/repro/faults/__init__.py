"""Fault injection and recovery for the STT-RAM model.

The paper's schemes are judged on *sense margin*; a real memory also has
to survive defects and transients.  This package provides composable,
RNG-seeded fault models (stuck MTJs, read-disturb flips, sense-offset
drift, bit-line noise, destructive-read power failures), an injector that
applies them to cells, populations, or arrays, the retry → ECC → scrub →
repair recovery ladder, and a campaign runner sweeping fault rates on the
16kb test chip while scoring detected / corrected / escaped errors.

Example — strike a small population and score the recovery ladder::

    import numpy as np
    from repro.faults import (
        FaultInjector, StuckShortFault, run_fault_campaign,
    )
    from repro.device.variation import CellPopulation, VariationModel

    # Low-level: inject stuck cells into a population you control.
    population = CellPopulation.sample(
        1024, VariationModel(), rng=np.random.default_rng(7)
    )
    injector = FaultInjector(
        [StuckShortFault(rate=1e-3)], np.random.default_rng(11)
    )
    fault_map = injector.inject_population(population)
    print(f"{fault_map.count} cells struck")

    # High-level: the full rate sweep with retry/ECC/scrub/repair scoring.
    result = run_fault_campaign(rates=(1e-3,), bits=2304, seed=2010)
    result.check(min_recovery=0.99, max_escaped=0)

With observability enabled (``repro.obs.configure(enabled=True)``) the
campaign also returns a deterministic metrics snapshot in
``result.metrics`` whose ``campaign.words{outcome=...}`` counters
reconcile exactly with the per-row recovered/detected/escaped totals.
"""

from repro.faults.campaign import (
    CampaignRow,
    FaultCampaignResult,
    build_scheme,
    default_fault_models,
    run_fault_campaign,
)
from repro.faults.drift import (
    DriftPoint,
    DriftScenario,
    aging_rolloff_shift,
    field_disturbance_window,
    install_drift,
    sense_amp_drift_step,
    temperature_ramp,
)
from repro.faults.injector import FaultInjector, FaultMap
from repro.faults.models import (
    BitlineNoiseFault,
    FaultKind,
    PowerFailureFault,
    ReadDisturbFault,
    ReadDisturbProneFault,
    SenseOffsetDrift,
    StuckOpenFault,
    StuckShortFault,
    TransitionFault,
)
from repro.faults.recovery import (
    LostWord,
    RecoveredWord,
    RecoveryController,
    RecoveryTier,
)

__all__ = [
    "FaultKind",
    "StuckShortFault",
    "StuckOpenFault",
    "TransitionFault",
    "ReadDisturbFault",
    "ReadDisturbProneFault",
    "SenseOffsetDrift",
    "BitlineNoiseFault",
    "PowerFailureFault",
    "FaultInjector",
    "FaultMap",
    "RecoveryTier",
    "RecoveredWord",
    "LostWord",
    "RecoveryController",
    "CampaignRow",
    "FaultCampaignResult",
    "build_scheme",
    "default_fault_models",
    "run_fault_campaign",
    "DriftPoint",
    "DriftScenario",
    "temperature_ramp",
    "field_disturbance_window",
    "aging_rolloff_shift",
    "sense_amp_drift_step",
    "install_drift",
]
