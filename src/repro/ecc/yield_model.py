"""Word-level yield with and without SECDED ECC.

A word of ``n`` cells is readable without ECC iff *every* cell clears the
sense window; with SECDED it survives one failing cell.  Given the per-bit
margins of a Monte-Carlo population, this module computes both word-failure
statistics per sensing scheme — quantifying how much process headroom ECC
buys the low-margin nondestructive scheme.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.array.montecarlo import MonteCarloMargins
from repro.errors import ConfigurationError

__all__ = [
    "word_failure_probability",
    "EccYieldReport",
    "ecc_yield_report",
    "EccProvision",
    "provision_ecc",
]


def word_failure_probability(
    bit_fail_probability: float, word_cells: int, correctable: int = 1
) -> float:
    """P(word unreadable) for i.i.d. bit failures.

    Without ECC pass ``correctable = 0``; SECDED is ``correctable = 1``.
    Uses the exact binomial tail.
    """
    if not 0.0 <= bit_fail_probability <= 1.0:
        raise ConfigurationError("bit_fail_probability must be in [0, 1]")
    if word_cells < 1:
        raise ConfigurationError("word_cells must be >= 1")
    if correctable < 0:
        raise ConfigurationError("correctable must be >= 0")
    from scipy.stats import binom

    return float(binom.sf(correctable, word_cells, bit_fail_probability))


@dataclasses.dataclass(frozen=True)
class EccYieldReport:
    """Per-scheme word yield with/without SECDED over a sampled population."""

    word_cells: int
    required_margin: float
    raw_word_fail: Dict[str, float]     #: no ECC
    secded_word_fail: Dict[str, float]  #: single-error-correcting

    def improvement(self, scheme: str) -> float:
        """Word-failure reduction factor from SECDED (∞ if it reaches 0)."""
        raw = self.raw_word_fail[scheme]
        corrected = self.secded_word_fail[scheme]
        if corrected == 0.0:
            return float("inf") if raw > 0.0 else 1.0
        return raw / corrected


def ecc_yield_report(
    monte_carlo: MonteCarloMargins,
    word_cells: int = 72,
    required_margin: float = 8.0e-3,
) -> EccYieldReport:
    """Empirical word-level yield from per-bit Monte-Carlo margins.

    Bits are grouped into consecutive words of ``word_cells`` (a (72, 64)
    SECDED word by default); a word fails raw if any cell fails, and fails
    under SECDED if two or more cells fail.
    """
    if word_cells < 1:
        raise ConfigurationError("word_cells must be >= 1")
    raw: Dict[str, float] = {}
    secded: Dict[str, float] = {}
    for name, margins in monte_carlo.schemes.items():
        fails = margins.fail_mask(required_margin)
        usable = (fails.size // word_cells) * word_cells
        if usable == 0:
            raise ConfigurationError(
                f"population of {fails.size} bits smaller than one word"
            )
        per_word = fails[:usable].reshape(-1, word_cells).sum(axis=1)
        raw[name] = float(np.mean(per_word >= 1))
        secded[name] = float(np.mean(per_word >= 2))
    return EccYieldReport(
        word_cells=word_cells,
        required_margin=required_margin,
        raw_word_fail=raw,
        secded_word_fail=secded,
    )


def _parity_bits(level: np.ndarray, word_cells: int) -> np.ndarray:
    """Check bits of a ``level``-error-correcting code over ``word_cells``
    data bits: ``level * (ceil(log2(word_cells)) + 1) + 1`` (the BCH bound
    with one extra detection bit; for 16 data bits this gives the familiar
    SECDED 6 at level 1 and DECTED 11 at level 2), and 0 at level 0.
    """
    address_bits = int(np.ceil(np.log2(word_cells))) + 1
    level = np.asarray(level, dtype=np.int64)
    return np.where(level > 0, level * address_bits + 1, 0)


@dataclasses.dataclass(frozen=True)
class EccProvision:
    """Per-die ECC provisioning from residual (post-repair) fail maps."""

    word_cells: int
    max_correctable: int
    levels: np.ndarray       #: per-die correction level (worst word's fails)
    parity_bits: np.ndarray  #: per-die check bits per word at that level
    overhead: np.ndarray     #: per-die area overhead: parity / data bits
    covered: np.ndarray      #: per-die True iff the level is provisionable

    @property
    def dies(self) -> int:
        """Number of dies provisioned."""
        return int(self.levels.size)


def provision_ecc(
    residual_fails: np.ndarray,
    word_cells: int,
    max_correctable: int = 1,
) -> EccProvision:
    """Provision each die's ECC strength from its residual fail map.

    ``residual_fails`` is a ``(dies, words)`` array of per-word failing-cell
    counts *after* spare repair.  Each die is provisioned with the smallest
    correction level covering its worst word; a die whose worst word needs
    more than ``max_correctable`` corrections is not provisionable (it
    scraps).  Purely elementwise per die, so provisioning a stacked batch
    is bit-exact with provisioning each die alone.
    """
    if word_cells < 1:
        raise ConfigurationError("word_cells must be >= 1")
    if max_correctable < 0:
        raise ConfigurationError("max_correctable must be >= 0")
    residual = np.atleast_2d(np.asarray(residual_fails, dtype=np.int64))
    levels = residual.max(axis=1)
    covered = levels <= max_correctable
    # Uncovered dies scrap; they are still charged the capped provision.
    parity = _parity_bits(np.minimum(levels, max_correctable), word_cells)
    return EccProvision(
        word_cells=word_cells,
        max_correctable=max_correctable,
        levels=levels,
        parity_bits=parity,
        overhead=parity / float(word_cells),
        covered=covered,
    )
