"""ECC-protected array: SECDED words over an :class:`STTRAMArray`.

Composes the Hamming codec with the behavioural array so a "memory
controller" view exists: logical words are encoded into 72-cell codewords,
read back through any sensing scheme, and decoded with single-error
correction — the architecture that lets the low-margin nondestructive
scheme ship at scaled variation (ablation A8).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.array.array import STTRAMArray
from repro.core.base import SensingScheme
from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.errors import ConfigurationError

__all__ = ["EccArray", "EccReadResult"]


@dataclasses.dataclass(frozen=True)
class EccReadResult:
    """One logical-word read through the ECC layer."""

    value: int
    status: DecodeStatus
    corrected_position: int = -1

    @property
    def reliable(self) -> bool:
        """True unless the decoder flagged an uncorrectable word."""
        return self.status is not DecodeStatus.DETECTED


class EccArray:
    """A logical word store with SECDED protection.

    Parameters
    ----------
    array:
        The physical cell array (must hold at least one codeword).
    data_bits:
        Logical word width (default 64 → (72, 64) codewords).
    """

    def __init__(self, array: STTRAMArray, data_bits: int = 64):
        self.codec = HammingSECDED(data_bits)
        if array.size_bits < self.codec.codeword_bits:
            raise ConfigurationError(
                f"array of {array.size_bits} cells cannot hold one "
                f"{self.codec.codeword_bits}-cell codeword"
            )
        self.array = array
        self._stats: Dict[DecodeStatus, int] = {status: 0 for status in DecodeStatus}

    @property
    def size_words(self) -> int:
        """Number of logical words the array holds."""
        return self.array.size_bits // self.codec.codeword_bits

    @property
    def statistics(self) -> Dict[DecodeStatus, int]:
        """Decode-status counters accumulated over all reads."""
        return dict(self._stats)

    def _check_address(self, address: int) -> int:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )
        return address * self.codec.codeword_bits

    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Encode ``value`` and store the codeword."""
        base = self._check_address(address)
        codeword = self.codec.encode_word(value)
        for offset, bit in enumerate(codeword):
            self.array._states[base + offset] = bit

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> EccReadResult:
        """Read the codeword through ``scheme`` and decode it."""
        base = self._check_address(address)
        received = np.empty(self.codec.codeword_bits, dtype=np.uint8)
        for offset in range(self.codec.codeword_bits):
            result = self.array.read_bit(base + offset, scheme, rng)
            received[offset] = result.bit if result.bit is not None else 0
        value, status = self.codec.decode_word(received)
        # decode_word recomputes via decode(); fetch the position too.
        decode = self.codec.decode(received)
        self._stats[decode.status] += 1
        return EccReadResult(
            value=value,
            status=decode.status,
            corrected_position=decode.corrected_position,
        )

    def scrub(
        self,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Read every word, rewrite any corrected word, and return the
        number of corrections applied (a standard ECC scrub pass).
        Uncorrectable words are left untouched."""
        corrections = 0
        for address in range(self.size_words):
            result = self.read_word(address, scheme, rng)
            if result.status is DecodeStatus.CORRECTED:
                self.write_word(address, result.value)
                corrections += 1
        return corrections
