"""ECC-protected array: SECDED words over an :class:`STTRAMArray`.

Composes the Hamming codec with the behavioural array so a "memory
controller" view exists: logical words are encoded into 72-cell codewords,
read back through any sensing scheme, and decoded with single-error
correction — the architecture that lets the low-margin nondestructive
scheme ship at scaled variation (ablation A8).

Codewords are read through the vectorized batch kernel (one
:meth:`~repro.array.array.STTRAMArray.read_bits` pass per word — the same
RNG stream as the historical per-bit loop), and every read can carry a
:class:`~repro.core.retry.RetryPolicy` so metastable bits are re-sensed
*before* the decoder sees them — the first tier of the recovery ladder
(retry → ECC → scrub → repair, see :mod:`repro.faults.recovery`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.array.array import STTRAMArray
from repro.core.base import SensingScheme
from repro.core.retry import RetryPolicy
from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.trace import ECC_CORRECTED, ECC_DETECTED, SCRUB

__all__ = ["EccArray", "EccReadResult", "ScrubReport"]


@dataclasses.dataclass(frozen=True)
class EccReadResult:
    """One logical-word read through the ECC layer.

    ``metastable_bits``, ``attempts`` and ``read_pulses`` surface the
    sensing effort behind the word: how many codeword bits landed in the
    sense-amplifier window, the worst per-bit attempt count, and the total
    read pulses charged (all 1 × codeword width for a retry-free read).
    """

    value: int
    status: DecodeStatus
    corrected_position: int = -1
    metastable_bits: int = 0
    attempts: int = 1
    read_pulses: int = 0

    @property
    def reliable(self) -> bool:
        """True unless the decoder flagged an uncorrectable word."""
        return self.status is not DecodeStatus.DETECTED


@dataclasses.dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrub pass over every word.

    A scrub rewrites corrected words; *detected-but-uncorrectable* words
    are counted and reported — never silently rewritten — so the caller
    can escalate them to the repair tier.
    """

    corrected: int
    uncorrectable: int
    clean: int
    uncorrectable_addresses: Tuple[int, ...] = ()

    @property
    def words(self) -> int:
        """Total words scrubbed."""
        return self.corrected + self.uncorrectable + self.clean

    @property
    def healthy(self) -> bool:
        """True when no word was beyond correction."""
        return self.uncorrectable == 0


class EccArray:
    """A logical word store with SECDED protection.

    Parameters
    ----------
    array:
        The physical cell array (must hold at least one codeword).
    data_bits:
        Logical word width (default 64 → (72, 64) codewords).
    """

    def __init__(self, array: STTRAMArray, data_bits: int = 64):
        self.codec = HammingSECDED(data_bits)
        if array.size_bits < self.codec.codeword_bits:
            raise ConfigurationError(
                f"array of {array.size_bits} cells cannot hold one "
                f"{self.codec.codeword_bits}-cell codeword"
            )
        self.array = array
        self._stats: Dict[DecodeStatus, int] = {status: 0 for status in DecodeStatus}

    @property
    def size_words(self) -> int:
        """Number of logical words the array holds."""
        return self.array.size_bits // self.codec.codeword_bits

    @property
    def statistics(self) -> Dict[DecodeStatus, int]:
        """Decode-status counters accumulated over all reads."""
        return dict(self._stats)

    def _check_address(self, address: int) -> int:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )
        return address * self.codec.codeword_bits

    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Encode ``value`` and store the codeword."""
        base = self._check_address(address)
        codeword = self.codec.encode_word(value)
        self.array._states[base:base + self.codec.codeword_bits] = codeword

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **kwargs,
    ) -> EccReadResult:
        """Read the codeword through ``scheme`` (one batch pass) and decode.

        With a ``retry_policy``, metastable codeword bits are re-sensed
        before decoding — the retry tier running *under* the ECC tier, so
        the decoder's single-error budget is spent on real faults rather
        than unresolved comparisons.  Extra keyword arguments pass through
        to the scheme's kernel (per-bit arrays must already be restricted
        to this word's codeword span).
        """
        base = self._check_address(address)
        span = range(base, base + self.codec.codeword_bits)
        if retry_policy is None:
            batch = self.array.read_bits(span, scheme, rng, **kwargs)
            attempts = 1
            read_pulses = batch.read_pulses * self.codec.codeword_bits
        else:
            batch = self.array.read_bits_with_retry(
                span, scheme, retry_policy, rng, **kwargs
            )
            attempts = int(batch.attempts.max())
            read_pulses = batch.total_read_pulses
        received = batch.bit_values()
        decode = self.codec.decode(received)
        self._commit_decode(address, decode.status, decode.corrected_position)
        return EccReadResult(
            value=self.codec.bits_to_int(decode.data),
            status=decode.status,
            corrected_position=decode.corrected_position,
            metastable_bits=int(np.count_nonzero(batch.metastable)),
            attempts=attempts,
            read_pulses=read_pulses,
        )

    def _commit_decode(self, address: int, status: DecodeStatus, position: int) -> None:
        """Account one finished word decode (stats + obs), in word order."""
        self._stats[status] += 1
        if _obs.active():
            _obs.get_registry().inc("ecc.words", status=status.name.lower())
            if status is DecodeStatus.CORRECTED:
                _obs.trace(ECC_CORRECTED, address=address, position=position)
            elif status is DecodeStatus.DETECTED:
                _obs.trace(ECC_DETECTED, address=address)

    def try_read_words(
        self,
        addresses: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        require_reliable: bool = False,
        **kwargs,
    ) -> Optional[List[EccReadResult]]:
        """All-clean fused read of several distinct words, or ``None``.

        One batched sensing pass covers the concatenated codeword spans —
        draw-for-draw identical to the *first attempt* of a word-by-word
        loop, because every kernel consumes its RNG in ascending bit order.
        The pass commits only when no word would have escalated: with a
        ``retry_policy``, zero metastable/undecided bits (no retry round
        would have fired); with ``require_reliable``, additionally every
        decode reliable (no scrub would have fired).  Otherwise the array
        state *and* the RNG are rewound to their pre-call snapshots and
        ``None`` is returned, so a word-by-word replay reproduces the
        scalar loop bit-for-bit.  Per-bit array kwargs cannot be fused and
        also return ``None``.
        """
        return self.probe_words(
            addresses, scheme, rng,
            retry_policy=retry_policy, require_reliable=require_reliable,
            **kwargs,
        )[0]

    def probe_words(
        self,
        addresses: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        require_reliable: bool = False,
        **kwargs,
    ) -> Tuple[Optional[List[EccReadResult]], Tuple[int, ...]]:
        """:meth:`try_read_words` plus escalation *hints* on failure.

        Returns ``(results, ())`` when the fused pass commits and
        ``(None, bad)`` when it rewinds, where ``bad`` holds the indices
        (into ``addresses``) of the words that forced the escalation.
        Because the probe's draws equal the scalar replay's first-attempt
        draws, those same words *will* escalate again when replayed —
        which lets a caller split the group at the bad words and still
        commit the clean segments fused, instead of bisecting blindly.
        ``bad`` is empty when the group could not be fused at all (per-bit
        array kwargs).
        """
        addresses = list(addresses)
        if len(set(addresses)) != len(addresses):
            raise ConfigurationError(
                "addresses must be distinct within one batched read"
            )
        if not addresses:
            return [], ()
        if any(isinstance(value, np.ndarray) for value in kwargs.values()):
            return None, ()
        width = self.codec.codeword_bits
        bases = np.array(
            [self._check_address(address) for address in addresses], dtype=np.intp
        )
        # Codeword spans, group-major: distinct by construction (distinct
        # word addresses → disjoint [base, base+width) ranges).
        spans = (bases[:, None] + np.arange(width, dtype=np.intp)).ravel()
        rng_state = rng.bit_generator.state if rng is not None else None
        states_before = self.array._states[spans].copy()
        batch = self.array.read_bits(spans, scheme, rng, assume_distinct=True, **kwargs)

        bad: Tuple[int, ...] = ()
        if retry_policy is not None:
            unresolved = batch.metastable | (batch.bits < 0)
            if unresolved.any():
                rows = unresolved.reshape(len(addresses), width).any(axis=1)
                bad = tuple(np.nonzero(rows)[0].tolist())
        decode = None
        if not bad:
            bits = batch.bit_values().reshape(len(addresses), width)
            decode = self.codec.decode_words(bits)
            if require_reliable:
                bad = tuple(
                    index for index, status in enumerate(decode.statuses)
                    if status is DecodeStatus.DETECTED
                )
        if bad:
            # Rewind: undo the probe's cell-state side effects and RNG
            # draws so the scalar replay starts from the pre-call world.
            self.array._states[spans] = states_before
            if rng_state is not None:
                rng.bit_generator.state = rng_state
            return None, bad

        metastable = batch.metastable.reshape(len(addresses), width)
        read_pulses = batch.read_pulses * width
        results = []
        for index, address in enumerate(addresses):
            status = decode.statuses[index]
            position = int(decode.corrected_positions[index])
            self._commit_decode(address, status, position)
            results.append(EccReadResult(
                value=decode.values[index],
                status=status,
                corrected_position=position,
                metastable_bits=int(np.count_nonzero(metastable[index])),
                attempts=1,
                read_pulses=read_pulses,
            ))
        return results, ()

    def read_words(
        self,
        addresses: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **kwargs,
    ) -> List[EccReadResult]:
        """Read several distinct words, fused into one sensing pass when
        the whole group stays clean.

        Bit-exact with a loop of :meth:`read_word` over ``addresses`` in
        order, under the same RNG: the fused fast path only commits when
        it is draw-for-draw identical to that loop, and a group that would
        retry is *split at the escalating words* (the probe's hints): the
        clean segments between them still commit fused — each is
        draw-equal to the scalar loop over its own slice, starting from
        the state the previous slice left behind — so only the words that
        actually escalate pay the scalar ladder.
        """
        addresses = list(addresses)
        if any(isinstance(value, np.ndarray) for value in kwargs.values()):
            # Per-bit kwargs cannot be fused; go straight to the loop.
            return [
                self.read_word(a, scheme, rng, retry_policy=retry_policy, **kwargs)
                for a in addresses
            ]
        fused, bad = self.probe_words(
            addresses, scheme, rng, retry_policy=retry_policy, **kwargs
        )
        if fused is not None:
            return fused
        results: List[EccReadResult] = []
        start = 0
        for index in bad:
            if index > start:
                results.extend(self.read_words(
                    addresses[start:index], scheme, rng,
                    retry_policy=retry_policy, **kwargs,
                ))
            results.append(self.read_word(
                addresses[index], scheme, rng,
                retry_policy=retry_policy, **kwargs,
            ))
            start = index + 1
        if start < len(addresses):
            results.extend(self.read_words(
                addresses[start:], scheme, rng,
                retry_policy=retry_policy, **kwargs,
            ))
        return results

    def scrub(
        self,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **kwargs,
    ) -> ScrubReport:
        """Read every word, rewrite corrected words, count the rest.

        Detected-but-uncorrectable words are left untouched and reported
        in the :class:`ScrubReport` — rewriting them would launder lost
        data into "clean" storage.
        """
        corrected = 0
        clean = 0
        uncorrectable = []
        for address in range(self.size_words):
            result = self.read_word(
                address, scheme, rng, retry_policy=retry_policy, **kwargs
            )
            if result.status is DecodeStatus.CORRECTED:
                self.write_word(address, result.value)
                corrected += 1
            elif result.status is DecodeStatus.DETECTED:
                uncorrectable.append(address)
            else:
                clean += 1
        report = ScrubReport(
            corrected=corrected,
            uncorrectable=len(uncorrectable),
            clean=clean,
            uncorrectable_addresses=tuple(uncorrectable),
        )
        if _obs.active():
            registry = _obs.get_registry()
            registry.inc("ecc.scrub.passes")
            for outcome, count in (
                ("clean", report.clean),
                ("corrected", report.corrected),
                ("uncorrectable", report.uncorrectable),
            ):
                if count:
                    registry.inc("ecc.scrub.words", count, outcome=outcome)
            _obs.trace(
                SCRUB,
                words=report.words,
                corrected=report.corrected,
                uncorrectable=report.uncorrectable,
            )
        return report
