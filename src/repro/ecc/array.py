"""ECC-protected array: SECDED words over an :class:`STTRAMArray`.

Composes the Hamming codec with the behavioural array so a "memory
controller" view exists: logical words are encoded into 72-cell codewords,
read back through any sensing scheme, and decoded with single-error
correction — the architecture that lets the low-margin nondestructive
scheme ship at scaled variation (ablation A8).

Codewords are read through the vectorized batch kernel (one
:meth:`~repro.array.array.STTRAMArray.read_bits` pass per word — the same
RNG stream as the historical per-bit loop), and every read can carry a
:class:`~repro.core.retry.RetryPolicy` so metastable bits are re-sensed
*before* the decoder sees them — the first tier of the recovery ladder
(retry → ECC → scrub → repair, see :mod:`repro.faults.recovery`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.array.array import STTRAMArray
from repro.core.base import SensingScheme
from repro.core.retry import RetryPolicy
from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.trace import ECC_CORRECTED, ECC_DETECTED, SCRUB

__all__ = ["EccArray", "EccReadResult", "ScrubReport"]


@dataclasses.dataclass(frozen=True)
class EccReadResult:
    """One logical-word read through the ECC layer.

    ``metastable_bits``, ``attempts`` and ``read_pulses`` surface the
    sensing effort behind the word: how many codeword bits landed in the
    sense-amplifier window, the worst per-bit attempt count, and the total
    read pulses charged (all 1 × codeword width for a retry-free read).
    """

    value: int
    status: DecodeStatus
    corrected_position: int = -1
    metastable_bits: int = 0
    attempts: int = 1
    read_pulses: int = 0

    @property
    def reliable(self) -> bool:
        """True unless the decoder flagged an uncorrectable word."""
        return self.status is not DecodeStatus.DETECTED


@dataclasses.dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrub pass over every word.

    A scrub rewrites corrected words; *detected-but-uncorrectable* words
    are counted and reported — never silently rewritten — so the caller
    can escalate them to the repair tier.
    """

    corrected: int
    uncorrectable: int
    clean: int
    uncorrectable_addresses: Tuple[int, ...] = ()

    @property
    def words(self) -> int:
        """Total words scrubbed."""
        return self.corrected + self.uncorrectable + self.clean

    @property
    def healthy(self) -> bool:
        """True when no word was beyond correction."""
        return self.uncorrectable == 0


class EccArray:
    """A logical word store with SECDED protection.

    Parameters
    ----------
    array:
        The physical cell array (must hold at least one codeword).
    data_bits:
        Logical word width (default 64 → (72, 64) codewords).
    """

    def __init__(self, array: STTRAMArray, data_bits: int = 64):
        self.codec = HammingSECDED(data_bits)
        if array.size_bits < self.codec.codeword_bits:
            raise ConfigurationError(
                f"array of {array.size_bits} cells cannot hold one "
                f"{self.codec.codeword_bits}-cell codeword"
            )
        self.array = array
        self._stats: Dict[DecodeStatus, int] = {status: 0 for status in DecodeStatus}

    @property
    def size_words(self) -> int:
        """Number of logical words the array holds."""
        return self.array.size_bits // self.codec.codeword_bits

    @property
    def statistics(self) -> Dict[DecodeStatus, int]:
        """Decode-status counters accumulated over all reads."""
        return dict(self._stats)

    def _check_address(self, address: int) -> int:
        if not 0 <= address < self.size_words:
            raise IndexError(
                f"word address {address} out of range [0, {self.size_words})"
            )
        return address * self.codec.codeword_bits

    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Encode ``value`` and store the codeword."""
        base = self._check_address(address)
        codeword = self.codec.encode_word(value)
        for offset, bit in enumerate(codeword):
            self.array._states[base + offset] = bit

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **kwargs,
    ) -> EccReadResult:
        """Read the codeword through ``scheme`` (one batch pass) and decode.

        With a ``retry_policy``, metastable codeword bits are re-sensed
        before decoding — the retry tier running *under* the ECC tier, so
        the decoder's single-error budget is spent on real faults rather
        than unresolved comparisons.  Extra keyword arguments pass through
        to the scheme's kernel (per-bit arrays must already be restricted
        to this word's codeword span).
        """
        base = self._check_address(address)
        span = range(base, base + self.codec.codeword_bits)
        if retry_policy is None:
            batch = self.array.read_bits(span, scheme, rng, **kwargs)
            attempts = 1
            read_pulses = batch.read_pulses * self.codec.codeword_bits
        else:
            batch = self.array.read_bits_with_retry(
                span, scheme, retry_policy, rng, **kwargs
            )
            attempts = int(batch.attempts.max())
            read_pulses = batch.total_read_pulses
        received = batch.bit_values()
        decode = self.codec.decode(received)
        self._stats[decode.status] += 1
        if _obs.active():
            _obs.get_registry().inc("ecc.words", status=decode.status.name.lower())
            if decode.status is DecodeStatus.CORRECTED:
                _obs.trace(
                    ECC_CORRECTED,
                    address=address,
                    position=decode.corrected_position,
                )
            elif decode.status is DecodeStatus.DETECTED:
                _obs.trace(ECC_DETECTED, address=address)
        return EccReadResult(
            value=self.codec.bits_to_int(decode.data),
            status=decode.status,
            corrected_position=decode.corrected_position,
            metastable_bits=int(np.count_nonzero(batch.metastable)),
            attempts=attempts,
            read_pulses=read_pulses,
        )

    def scrub(
        self,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        retry_policy: Optional[RetryPolicy] = None,
        **kwargs,
    ) -> ScrubReport:
        """Read every word, rewrite corrected words, count the rest.

        Detected-but-uncorrectable words are left untouched and reported
        in the :class:`ScrubReport` — rewriting them would launder lost
        data into "clean" storage.
        """
        corrected = 0
        clean = 0
        uncorrectable = []
        for address in range(self.size_words):
            result = self.read_word(
                address, scheme, rng, retry_policy=retry_policy, **kwargs
            )
            if result.status is DecodeStatus.CORRECTED:
                self.write_word(address, result.value)
                corrected += 1
            elif result.status is DecodeStatus.DETECTED:
                uncorrectable.append(address)
            else:
                clean += 1
        report = ScrubReport(
            corrected=corrected,
            uncorrectable=len(uncorrectable),
            clean=clean,
            uncorrectable_addresses=tuple(uncorrectable),
        )
        if _obs.active():
            registry = _obs.get_registry()
            registry.inc("ecc.scrub.passes")
            for outcome, count in (
                ("clean", report.clean),
                ("corrected", report.corrected),
                ("uncorrectable", report.uncorrectable),
            ):
                if count:
                    registry.inc("ecc.scrub.words", count, outcome=outcome)
            _obs.trace(
                SCRUB,
                words=report.words,
                corrected=report.corrected,
                uncorrectable=report.uncorrectable,
            )
        return report
