"""Hamming SECDED (single-error-correct, double-error-detect) codec.

Classic extended-Hamming construction for an arbitrary data width ``k``:
parity bits occupy power-of-two positions of the (1-indexed) codeword,
each covering the positions whose index has the corresponding bit set,
plus one overall-parity bit appended for double-error detection.
For ``k = 64`` this is the familiar (72, 64) DRAM/STT-RAM code.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DecodeStatus", "DecodeResult", "BatchDecodeResult", "HammingSECDED"]


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"                    #: no error detected
    CORRECTED = "corrected"            #: single error corrected
    DETECTED = "detected_uncorrectable"  #: double error detected, data lost


@dataclasses.dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus the error status."""

    data: np.ndarray      #: recovered data bits (uint8 array of length k)
    status: DecodeStatus
    corrected_position: int = -1  #: codeword index fixed (when CORRECTED)


@dataclasses.dataclass(frozen=True)
class BatchDecodeResult:
    """Struct-of-arrays outcome of decoding many codewords at once.

    Row ``i`` carries exactly what :meth:`HammingSECDED.decode` followed by
    :meth:`HammingSECDED.bits_to_int` would have produced for codeword
    ``i`` — the vectorized decoder is defined by that equivalence.
    """

    values: Tuple[int, ...]            #: decoded integer words (LSB-first)
    statuses: Tuple[DecodeStatus, ...]
    corrected_positions: np.ndarray    #: per-word codeword index fixed (-1)
    data: np.ndarray                   #: corrected data bits, shape (n, k)

    @property
    def size(self) -> int:
        """Number of decoded words."""
        return len(self.values)

    def result(self, index: int) -> DecodeResult:
        """Scalar :class:`DecodeResult` view of one row."""
        return DecodeResult(
            data=self.data[index].copy(),
            status=self.statuses[index],
            corrected_position=int(self.corrected_positions[index]),
        )


class HammingSECDED:
    """Extended Hamming code over ``data_bits`` data bits.

    ``encode`` maps a bit array of length ``k`` to a codeword of length
    ``k + r + 1`` (``r`` Hamming parity bits + 1 overall parity);
    ``decode`` corrects any single bit flip and flags any double flip.
    """

    def __init__(self, data_bits: int = 64):
        if data_bits < 1:
            raise ConfigurationError(f"data_bits must be >= 1, got {data_bits}")
        self.data_bits = int(data_bits)
        self.parity_bits = self._parity_count(self.data_bits)
        #: total codeword length including the overall-parity bit
        self.codeword_bits = self.data_bits + self.parity_bits + 1
        # Precompute the (1-indexed) layout of the inner Hamming code.
        inner_length = self.data_bits + self.parity_bits
        self._parity_positions = [1 << j for j in range(self.parity_bits)]
        self._data_positions = [
            position
            for position in range(1, inner_length + 1)
            if position not in self._parity_positions
        ]
        # Precomputed decode machinery, shared by the scalar and the
        # vectorized decoder: row j of the check matrix covers the
        # (1-indexed) inner positions whose index has bit j set.
        positions = np.arange(1, inner_length + 1)
        self._check_matrix = np.array(
            [(positions & p) != 0 for p in self._parity_positions], dtype=np.uint8
        )  # shape (parity_bits, inner_length)
        self._syndrome_weights = np.array(self._parity_positions, dtype=np.int64)
        self._data_indices = np.array(self._data_positions, dtype=np.intp) - 1
        self._parity_indices = np.array(self._parity_positions, dtype=np.intp) - 1
        # Encode matrix: entry (j, i) set when data position i contributes
        # to parity bit j (parity positions never cover each other, so the
        # parities depend on data bits alone).
        data_positions = np.array(self._data_positions, dtype=np.int64)
        self._encode_matrix = np.array(
            [(data_positions & p) != 0 for p in self._parity_positions],
            dtype=np.int64,
        )  # shape (parity_bits, data_bits)

    @staticmethod
    def _parity_count(k: int) -> int:
        r = 0
        while (1 << r) < k + r + 1:
            r += 1
        return r

    @property
    def overhead(self) -> float:
        """Check-bit overhead ``(n - k) / k``."""
        return (self.codeword_bits - self.data_bits) / self.data_bits

    # ------------------------------------------------------------------
    def _as_bits(self, data: Sequence[int]) -> np.ndarray:
        bits = np.asarray(data, dtype=np.uint8)
        if bits.shape != (self.data_bits,):
            raise ConfigurationError(
                f"expected {self.data_bits} data bits, got shape {bits.shape}"
            )
        if np.any(bits > 1):
            raise ConfigurationError("data must be 0/1 bits")
        return bits

    def encode(self, data: Sequence[int]) -> np.ndarray:
        """Encode ``data`` (length-k bit sequence) into a codeword."""
        bits = self._as_bits(data)
        inner = np.zeros(self.data_bits + self.parity_bits, dtype=np.uint8)
        inner[self._data_indices] = bits
        inner[self._parity_indices] = (
            self._encode_matrix @ bits.astype(np.int64)
        ) & 1
        overall = np.bitwise_xor.reduce(inner)
        return np.concatenate([inner, [overall]]).astype(np.uint8)

    def decode(self, codeword: Sequence[int]) -> DecodeResult:
        """Decode a codeword, correcting one flip or flagging two."""
        received = np.asarray(codeword, dtype=np.uint8)
        if received.shape != (self.codeword_bits,):
            raise ConfigurationError(
                f"expected {self.codeword_bits} codeword bits, got {received.shape}"
            )
        inner_length = self.data_bits + self.parity_bits
        inner = received[:-1]
        checks = (self._check_matrix @ inner.astype(np.int64)) & 1
        syndrome = int(checks @ self._syndrome_weights)
        overall_ok = np.bitwise_xor.reduce(received) == 0

        corrected = inner.copy()
        if syndrome == 0 and overall_ok:
            status, position = DecodeStatus.CLEAN, -1
        elif syndrome != 0 and not overall_ok:
            # Single error inside the inner codeword: correct it.
            if syndrome <= inner_length:
                corrected[syndrome - 1] ^= 1
            status, position = DecodeStatus.CORRECTED, syndrome - 1
        elif syndrome == 0 and not overall_ok:
            # The overall-parity bit itself flipped.
            status, position = DecodeStatus.CORRECTED, self.codeword_bits - 1
        else:
            # syndrome != 0 but overall parity consistent: double error.
            status, position = DecodeStatus.DETECTED, -1

        data = corrected[self._data_indices]
        return DecodeResult(data=data, status=status, corrected_position=position)

    def decode_words(self, codewords) -> BatchDecodeResult:
        """Decode ``n`` codewords in one NumPy pass.

        ``codewords`` is an ``(n, codeword_bits)`` bit matrix; row ``i`` of
        the result matches :meth:`decode` on that row exactly (same status,
        same corrected position, same data bits) — this is the decoder the
        batched serving path runs so a coalesced group costs one syndrome
        matrix product instead of ``n`` Python loops.
        """
        received = np.asarray(codewords, dtype=np.uint8)
        if received.ndim != 2 or received.shape[1] != self.codeword_bits:
            raise ConfigurationError(
                f"expected (n, {self.codeword_bits}) codeword matrix, got "
                f"{received.shape}"
            )
        inner_length = self.data_bits + self.parity_bits
        inner = received[:, :-1]
        checks = (inner.astype(np.int64) @ self._check_matrix.T) & 1  # (n, r)
        syndromes = checks @ self._syndrome_weights                   # (n,)
        overall_ok = (received.sum(axis=1) & 1) == 0

        corrected = inner.copy()
        single = (syndromes != 0) & ~overall_ok
        flip_rows = np.nonzero(single & (syndromes <= inner_length))[0]
        corrected[flip_rows, syndromes[flip_rows] - 1] ^= 1

        positions = np.full(received.shape[0], -1, dtype=np.int64)
        positions[single] = syndromes[single] - 1
        overall_flip = (syndromes == 0) & ~overall_ok
        positions[overall_flip] = self.codeword_bits - 1

        by_code = (DecodeStatus.CLEAN, DecodeStatus.CORRECTED, DecodeStatus.DETECTED)
        codes = np.where(overall_ok, np.where(syndromes == 0, 0, 2), 1)
        statuses = tuple(by_code[code] for code in codes.tolist())
        data = corrected[:, self._data_indices]
        packed = np.packbits(data, axis=1, bitorder="little")
        values = tuple(
            int.from_bytes(row.tobytes(), "little") for row in packed
        )
        return BatchDecodeResult(
            values=values,
            statuses=statuses,
            corrected_positions=positions,
            data=data,
        )

    # ------------------------------------------------------------------
    def encode_word(self, value: int) -> np.ndarray:
        """Encode an integer word (LSB-first bit order)."""
        if not 0 <= value < (1 << self.data_bits):
            raise ConfigurationError(
                f"value {value} does not fit in {self.data_bits} bits"
            )
        raw = value.to_bytes((self.data_bits + 7) // 8, "little")
        bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8),
            count=self.data_bits,
            bitorder="little",
        )
        return self.encode(bits)

    def bits_to_int(self, data: Sequence[int]) -> int:
        """Pack a data-bit array back into an integer (LSB-first)."""
        return sum(int(bit) << i for i, bit in enumerate(data))

    def decode_word(self, codeword: Sequence[int]):
        """Decode back to an integer word; returns (value, status)."""
        result = self.decode(codeword)
        return self.bits_to_int(result.data), result.status
