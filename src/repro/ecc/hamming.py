"""Hamming SECDED (single-error-correct, double-error-detect) codec.

Classic extended-Hamming construction for an arbitrary data width ``k``:
parity bits occupy power-of-two positions of the (1-indexed) codeword,
each covering the positions whose index has the corresponding bit set,
plus one overall-parity bit appended for double-error detection.
For ``k = 64`` this is the familiar (72, 64) DRAM/STT-RAM code.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DecodeStatus", "DecodeResult", "HammingSECDED"]


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"                    #: no error detected
    CORRECTED = "corrected"            #: single error corrected
    DETECTED = "detected_uncorrectable"  #: double error detected, data lost


@dataclasses.dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus the error status."""

    data: np.ndarray      #: recovered data bits (uint8 array of length k)
    status: DecodeStatus
    corrected_position: int = -1  #: codeword index fixed (when CORRECTED)


class HammingSECDED:
    """Extended Hamming code over ``data_bits`` data bits.

    ``encode`` maps a bit array of length ``k`` to a codeword of length
    ``k + r + 1`` (``r`` Hamming parity bits + 1 overall parity);
    ``decode`` corrects any single bit flip and flags any double flip.
    """

    def __init__(self, data_bits: int = 64):
        if data_bits < 1:
            raise ConfigurationError(f"data_bits must be >= 1, got {data_bits}")
        self.data_bits = int(data_bits)
        self.parity_bits = self._parity_count(self.data_bits)
        #: total codeword length including the overall-parity bit
        self.codeword_bits = self.data_bits + self.parity_bits + 1
        # Precompute the (1-indexed) layout of the inner Hamming code.
        inner_length = self.data_bits + self.parity_bits
        self._parity_positions = [1 << j for j in range(self.parity_bits)]
        self._data_positions = [
            position
            for position in range(1, inner_length + 1)
            if position not in self._parity_positions
        ]

    @staticmethod
    def _parity_count(k: int) -> int:
        r = 0
        while (1 << r) < k + r + 1:
            r += 1
        return r

    @property
    def overhead(self) -> float:
        """Check-bit overhead ``(n - k) / k``."""
        return (self.codeword_bits - self.data_bits) / self.data_bits

    # ------------------------------------------------------------------
    def _as_bits(self, data: Sequence[int]) -> np.ndarray:
        bits = np.asarray(data, dtype=np.uint8)
        if bits.shape != (self.data_bits,):
            raise ConfigurationError(
                f"expected {self.data_bits} data bits, got shape {bits.shape}"
            )
        if np.any(bits > 1):
            raise ConfigurationError("data must be 0/1 bits")
        return bits

    def encode(self, data: Sequence[int]) -> np.ndarray:
        """Encode ``data`` (length-k bit sequence) into a codeword."""
        bits = self._as_bits(data)
        inner_length = self.data_bits + self.parity_bits
        inner = np.zeros(inner_length + 1, dtype=np.uint8)  # 1-indexed
        for value, position in zip(bits, self._data_positions):
            inner[position] = value
        for parity_position in self._parity_positions:
            covered = [
                p for p in range(1, inner_length + 1)
                if (p & parity_position) and p != parity_position
            ]
            inner[parity_position] = np.bitwise_xor.reduce(inner[covered])
        codeword = inner[1:]
        overall = np.bitwise_xor.reduce(codeword)
        return np.concatenate([codeword, [overall]]).astype(np.uint8)

    def decode(self, codeword: Sequence[int]) -> DecodeResult:
        """Decode a codeword, correcting one flip or flagging two."""
        received = np.asarray(codeword, dtype=np.uint8)
        if received.shape != (self.codeword_bits,):
            raise ConfigurationError(
                f"expected {self.codeword_bits} codeword bits, got {received.shape}"
            )
        inner_length = self.data_bits + self.parity_bits
        inner = np.concatenate([[0], received[:-1]]).astype(np.uint8)  # 1-indexed
        syndrome = 0
        for parity_position in self._parity_positions:
            covered = [p for p in range(1, inner_length + 1) if p & parity_position]
            if np.bitwise_xor.reduce(inner[covered]):
                syndrome |= parity_position
        overall_ok = np.bitwise_xor.reduce(received) == 0

        corrected = inner.copy()
        if syndrome == 0 and overall_ok:
            status, position = DecodeStatus.CLEAN, -1
        elif syndrome != 0 and not overall_ok:
            # Single error inside the inner codeword: correct it.
            if syndrome <= inner_length:
                corrected[syndrome] ^= 1
            status, position = DecodeStatus.CORRECTED, syndrome - 1
        elif syndrome == 0 and not overall_ok:
            # The overall-parity bit itself flipped.
            status, position = DecodeStatus.CORRECTED, self.codeword_bits - 1
        else:
            # syndrome != 0 but overall parity consistent: double error.
            status, position = DecodeStatus.DETECTED, -1

        data = np.array(
            [corrected[p] for p in self._data_positions], dtype=np.uint8
        )
        return DecodeResult(data=data, status=status, corrected_position=position)

    # ------------------------------------------------------------------
    def encode_word(self, value: int) -> np.ndarray:
        """Encode an integer word (LSB-first bit order)."""
        if not 0 <= value < (1 << self.data_bits):
            raise ConfigurationError(
                f"value {value} does not fit in {self.data_bits} bits"
            )
        bits = [(value >> i) & 1 for i in range(self.data_bits)]
        return self.encode(bits)

    def bits_to_int(self, data: Sequence[int]) -> int:
        """Pack a data-bit array back into an integer (LSB-first)."""
        return sum(int(bit) << i for i, bit in enumerate(data))

    def decode_word(self, codeword: Sequence[int]):
        """Decode back to an integer word; returns (value, status)."""
        result = self.decode(codeword)
        return self.bits_to_int(result.data), result.status
