"""Error-correcting-code extension.

The nondestructive scheme trades margin for non-volatility: its ~12 mV
margin sits only ~1.5× above the 8 mV sense window, so aggressive process
scaling leaves a tail of marginal bits (ablation A6).  The standard
architectural remedy is SECDED ECC on each word.  This package provides a
Hamming single-error-correct / double-error-detect codec and a yield model
quantifying how much variation headroom ECC buys each sensing scheme.
"""

from repro.ecc.array import EccArray, EccReadResult, ScrubReport
from repro.ecc.hamming import HammingSECDED, DecodeStatus
from repro.ecc.yield_model import (
    EccProvision,
    EccYieldReport,
    ecc_yield_report,
    provision_ecc,
    word_failure_probability,
)

__all__ = [
    "EccArray",
    "EccReadResult",
    "ScrubReport",
    "HammingSECDED",
    "DecodeStatus",
    "word_failure_probability",
    "EccYieldReport",
    "ecc_yield_report",
    "EccProvision",
    "provision_ecc",
]
