"""Regenerative latch dynamics for the sense amplifier.

The behavioural :class:`~repro.circuit.sense_amp.SenseAmplifier` uses a
fixed resolution window (the paper's "about 8 mV").  This module derives
that window from the latch physics: a cross-coupled latch regenerates an
initial differential ``ΔV`` exponentially, ``ΔV(t) = ΔV e^{t/τ}``, and the
decision is valid once the differential reaches the logic swing.  The
probability of *metastability* within a sense window ``t_sen`` is then

    P(meta) = P(|ΔV| < V_logic e^{-t_sen/τ})

— i.e. the effective resolution window shrinks exponentially with the time
budget, which is exactly the latency/resolution trade the paper's 1.5 ns
``SenEn`` phase sets.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError

__all__ = ["RegenerativeLatch"]


@dataclasses.dataclass(frozen=True)
class RegenerativeLatch:
    """Cross-coupled latch with exponential regeneration.

    Attributes
    ----------
    regeneration_tau:
        Regeneration time constant [s] (gm/C of the cross-coupled pair;
        ~100 ps in 0.13 µm).
    logic_swing:
        Differential swing at which the decision is final [V].
    """

    regeneration_tau: float = 100e-12
    logic_swing: float = 1.0

    def __post_init__(self) -> None:
        if self.regeneration_tau <= 0.0:
            raise ConfigurationError("regeneration_tau must be positive")
        if self.logic_swing <= 0.0:
            raise ConfigurationError("logic_swing must be positive")

    def resolution_window(self, sense_time: float) -> float:
        """Smallest input differential that resolves within ``sense_time``
        [V]: ``V_logic · e^(-t/τ)``."""
        if sense_time < 0.0:
            raise ConfigurationError("sense_time must be non-negative")
        return self.logic_swing * math.exp(-sense_time / self.regeneration_tau)

    def resolve_time(self, differential: float) -> float:
        """Time to regenerate ``differential`` to the logic swing [s]."""
        magnitude = abs(differential)
        if magnitude <= 0.0:
            return math.inf
        if magnitude >= self.logic_swing:
            return 0.0
        return self.regeneration_tau * math.log(self.logic_swing / magnitude)

    def resolves_within(self, differential: float, sense_time: float) -> bool:
        """Whether an input differential produces a valid decision inside
        the sense window."""
        return self.resolve_time(differential) <= sense_time

    def metastability_probability(
        self, differential_sigma: float, sense_time: float
    ) -> float:
        """P(metastable) for a zero-mean Gaussian input differential with
        the given sigma — the standard latch MTBF integrand.

        ``P = P(|ΔV| < w)`` with ``w = resolution_window(t)``; for
        ``w ≪ σ`` this is ``≈ w · sqrt(2/π) / σ``.
        """
        if differential_sigma <= 0.0:
            raise ConfigurationError("differential_sigma must be positive")
        window = self.resolution_window(sense_time)
        z = window / differential_sigma
        return math.erf(z / math.sqrt(2.0))

    def required_sense_time(self, differential: float, margin: float = 1.0) -> float:
        """Sense window needed to resolve ``differential`` with a safety
        factor ``margin`` on the regeneration (e.g. 2 = two extra τ ln 2)."""
        if margin < 1.0:
            raise ConfigurationError("margin must be >= 1")
        return self.resolve_time(differential) * margin
