"""Modified Nodal Analysis: DC operating point and backward-Euler transient.

This is the reproduction's stand-in for SPICE.  It supports exactly the
element set the paper's sensing circuitry needs (resistors, capacitors,
current/voltage sources, phase-controlled switches) and solves

* **DC**: ``[G  B; B^T 0] [v; j] = [i; e]`` with capacitors open;
* **transient**: backward Euler, replacing each capacitor with its companion
  model ``G_c = C/dt`` in parallel with ``I_c = (C/dt) v_prev`` — A-stable,
  which matters because the netlists mix nanosecond bit-line constants with
  the ~micro-second constants of the tens-of-MΩ divider.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    Switch,
    VoltageSource,
    evaluate,
)
from repro.errors import CircuitError

__all__ = ["Circuit", "DCResult", "TransientResult"]

_GROUND_NAMES = ("0", "gnd", "GND", "ground")


@dataclasses.dataclass(frozen=True)
class DCResult:
    """DC operating point: node voltages and voltage-source currents."""

    voltages: Dict[str, float]
    source_currents: Dict[str, float]

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


@dataclasses.dataclass(frozen=True)
class TransientResult:
    """Transient waveforms: one voltage array per node over ``times``."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def __getitem__(self, node: str) -> np.ndarray:
        return self.voltages[node]

    def at(self, node: str, time: float) -> float:
        """Linearly interpolated node voltage at ``time``."""
        return float(np.interp(time, self.times, self.voltages[node]))

    def settling_time(
        self, node: str, final_tolerance: float = 0.01, reference: Optional[float] = None
    ) -> float:
        """First time after which the node stays within ``final_tolerance``
        (fractional) of its final value (or of ``reference`` if given)."""
        waveform = self.voltages[node]
        target = reference if reference is not None else float(waveform[-1])
        band = abs(target) * final_tolerance if target != 0.0 else final_tolerance
        outside = np.abs(waveform - target) > band
        if not outside.any():
            return float(self.times[0])
        last_outside = int(np.nonzero(outside)[0][-1])
        if last_outside + 1 >= len(self.times):
            return float(self.times[-1])
        return float(self.times[last_outside + 1])


class Circuit:
    """A netlist plus DC and transient solvers.

    Nodes are created implicitly by element constructors.  Ground may be
    spelled ``"0"``, ``"gnd"``, ``"GND"`` or ``"ground"``.
    """

    def __init__(self) -> None:
        self._resistors: List[Resistor] = []
        self._capacitors: List[Capacitor] = []
        self._current_sources: List[CurrentSource] = []
        self._voltage_sources: List[VoltageSource] = []
        self._switches: List[Switch] = []
        self._nodes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def _register(self, node: str) -> int:
        """Intern a node name; ground maps to index -1."""
        if node in _GROUND_NAMES:
            return -1
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)
        return self._nodes[node]

    def add_resistor(self, node_a: str, node_b: str, resistance, name: str = "R") -> Resistor:
        """Add a (possibly time-dependent) resistor and return it."""
        element = Resistor(node_a, node_b, resistance, name)
        self._register(node_a)
        self._register(node_b)
        self._resistors.append(element)
        return element

    def add_capacitor(
        self, node_a: str, node_b: str, capacitance: float,
        initial_voltage: float = 0.0, name: str = "C",
    ) -> Capacitor:
        """Add a capacitor with an optional initial condition."""
        element = Capacitor(node_a, node_b, capacitance, initial_voltage, name)
        self._register(node_a)
        self._register(node_b)
        self._capacitors.append(element)
        return element

    def add_current_source(
        self, node_from: str, node_to: str, current, name: str = "I"
    ) -> CurrentSource:
        """Add a current source pushing current into ``node_to``."""
        element = CurrentSource(node_from, node_to, current, name)
        self._register(node_from)
        self._register(node_to)
        self._current_sources.append(element)
        return element

    def add_voltage_source(
        self, node_plus: str, node_minus: str, voltage, name: str = "V"
    ) -> VoltageSource:
        """Add an ideal voltage source."""
        element = VoltageSource(node_plus, node_minus, voltage, name)
        self._register(node_plus)
        self._register(node_minus)
        self._voltage_sources.append(element)
        return element

    def add_switch(
        self, node_a: str, node_b: str, closed,
        r_on: float = 100.0, r_off: float = 1.0e12, name: str = "S",
    ) -> Switch:
        """Add a phase-controlled switch (``closed`` is ``f(t) -> bool``)."""
        element = Switch(node_a, node_b, closed, r_on, r_off, name)
        self._register(node_a)
        self._register(node_b)
        self._switches.append(element)
        return element

    @property
    def node_names(self) -> List[str]:
        """All non-ground node names in creation order."""
        return sorted(self._nodes, key=self._nodes.get)

    # ------------------------------------------------------------------
    # Matrix assembly
    # ------------------------------------------------------------------
    def _stamp_conductance(self, g_matrix: np.ndarray, a: int, b: int, g: float) -> None:
        if a >= 0:
            g_matrix[a, a] += g
        if b >= 0:
            g_matrix[b, b] += g
        if a >= 0 and b >= 0:
            g_matrix[a, b] -= g
            g_matrix[b, a] -= g

    def _assemble(
        self,
        time: float,
        cap_companion: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the full MNA system at ``time``.

        ``cap_companion`` holds ``(G_c, I_eq)`` per capacitor for transient
        steps; ``None`` means DC (capacitors open).
        """
        n = len(self._nodes)
        m = len(self._voltage_sources)
        size = n + m
        matrix = np.zeros((size, size))
        rhs = np.zeros(size)

        for resistor in self._resistors:
            a = self._register(resistor.node_a)
            b = self._register(resistor.node_b)
            self._stamp_conductance(matrix, a, b, resistor.conductance(time))

        for switch in self._switches:
            a = self._register(switch.node_a)
            b = self._register(switch.node_b)
            self._stamp_conductance(matrix, a, b, switch.conductance(time))

        if cap_companion is not None:
            for capacitor, (g_c, i_eq) in zip(self._capacitors, cap_companion):
                a = self._register(capacitor.node_a)
                b = self._register(capacitor.node_b)
                self._stamp_conductance(matrix, a, b, g_c)
                if a >= 0:
                    rhs[a] += i_eq
                if b >= 0:
                    rhs[b] -= i_eq

        for source in self._current_sources:
            a = self._register(source.node_from)
            b = self._register(source.node_to)
            value = evaluate(source.current, time)
            if a >= 0:
                rhs[a] -= value
            if b >= 0:
                rhs[b] += value

        for index, source in enumerate(self._voltage_sources):
            row = n + index
            p = self._register(source.node_plus)
            q = self._register(source.node_minus)
            if p >= 0:
                matrix[row, p] = 1.0
                matrix[p, row] = 1.0
            if q >= 0:
                matrix[row, q] = -1.0
                matrix[q, row] = -1.0
            rhs[row] = evaluate(source.voltage, time)

        return matrix, rhs

    def _solve_system(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise CircuitError(f"singular MNA matrix: {exc}") from exc

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def solve_dc(self, time: float = 0.0) -> DCResult:
        """DC operating point at ``time`` (capacitors open)."""
        if not self._nodes:
            raise CircuitError("empty circuit")
        matrix, rhs = self._assemble(time, cap_companion=None)
        solution = self._solve_system(matrix, rhs)
        n = len(self._nodes)
        voltages = {name: float(solution[idx]) for name, idx in self._nodes.items()}
        currents = {
            source.name: float(solution[n + i])
            for i, source in enumerate(self._voltage_sources)
        }
        return DCResult(voltages, currents)

    def solve_transient(
        self,
        t_stop: float,
        dt: float,
        t_start: float = 0.0,
    ) -> TransientResult:
        """Backward-Euler transient from ``t_start`` to ``t_stop``.

        Capacitor initial conditions seed the first step.  Fixed step size:
        simple, A-stable, and adequate for the phase-piecewise-constant
        excitations of a read operation.
        """
        if dt <= 0.0 or t_stop <= t_start:
            raise CircuitError("need dt > 0 and t_stop > t_start")
        if not self._nodes:
            raise CircuitError("empty circuit")

        steps = int(round((t_stop - t_start) / dt))
        times = t_start + dt * np.arange(steps + 1)
        n = len(self._nodes)
        waveforms = np.zeros((steps + 1, n))

        cap_voltages = [capacitor.initial_voltage for capacitor in self._capacitors]

        def node_voltage(solution: np.ndarray, node: str) -> float:
            index = self._register(node)
            return 0.0 if index < 0 else float(solution[index])

        # Initial point: solve DC with capacitors held at their ICs by huge
        # companion conductances (so t=0 reflects the stored charge).
        companion0 = [
            (capacitor.capacitance / dt * 1e3, capacitor.capacitance / dt * 1e3 * v0)
            for capacitor, v0 in zip(self._capacitors, cap_voltages)
        ]
        matrix, rhs = self._assemble(times[0], companion0)
        solution = self._solve_system(matrix, rhs)
        waveforms[0] = solution[:n]
        cap_voltages = [
            node_voltage(solution, c.node_a) - node_voltage(solution, c.node_b)
            for c in self._capacitors
        ]

        for step in range(1, steps + 1):
            time = times[step]
            companion = [
                (capacitor.capacitance / dt, capacitor.capacitance / dt * v_prev)
                for capacitor, v_prev in zip(self._capacitors, cap_voltages)
            ]
            matrix, rhs = self._assemble(time, companion)
            solution = self._solve_system(matrix, rhs)
            waveforms[step] = solution[:n]
            cap_voltages = [
                node_voltage(solution, c.node_a) - node_voltage(solution, c.node_b)
                for c in self._capacitors
            ]

        voltages = {
            name: waveforms[:, idx].copy() for name, idx in self._nodes.items()
        }
        return TransientResult(times, voltages)
