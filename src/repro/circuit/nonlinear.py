"""Nonlinear MNA: Newton iteration over voltage-dependent conductances.

The linear engine in :mod:`repro.circuit.mna` models the MTJ as a resistor
linearized at the phase read current.  This module closes the loop: a
:class:`VoltageDependentResistor` carries an arbitrary branch current law
``i = f(v)`` (e.g. the tunnel junction's ``i = G0 (1 + (v/V_h)^2) v``), and
:class:`NonlinearCircuit` solves DC and backward-Euler transients with a
damped Newton iteration — each nonlinear branch is replaced by its
companion model ``G_eq = di/dv`` in parallel with ``I_eq = f(v0) - G_eq v0``
until the node voltages stop moving.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.circuit.mna import Circuit, DCResult, TransientResult
from repro.errors import CircuitError, ConvergenceError

__all__ = ["VoltageDependentResistor", "NonlinearCircuit", "mtj_branch_current"]


def mtj_branch_current(r_zero: float, v_half: float) -> Callable[[float], float]:
    """Branch law of a tunnel junction with quadratic conductance collapse:

        i(v) = (v / r_zero) (1 + (v / v_half)^2)

    (matches :mod:`repro.device.bias`; pass the state's zero-bias resistance
    and half-voltage).
    """
    if r_zero <= 0.0 or v_half <= 0.0:
        raise CircuitError("r_zero and v_half must be positive")

    def branch(v: float) -> float:
        return (v / r_zero) * (1.0 + (v / v_half) ** 2)

    return branch


@dataclasses.dataclass
class VoltageDependentResistor:
    """Two-terminal element with branch current ``i = f(v_a - v_b)``.

    ``current_law`` must be continuous and monotonically increasing (a
    passive resistor); the derivative is taken numerically.
    """

    node_a: str
    node_b: str
    current_law: Callable[[float], float]
    name: str = "NR"

    def current(self, voltage: float) -> float:
        """Branch current at the given branch voltage."""
        return float(self.current_law(voltage))

    def conductance(self, voltage: float, step: float = 1e-6) -> float:
        """Numerical small-signal conductance ``di/dv`` at ``voltage``."""
        g = (self.current(voltage + step) - self.current(voltage - step)) / (2 * step)
        if g <= 0.0:
            raise CircuitError(
                f"{self.name}: non-passive branch (di/dv = {g}) at v = {voltage}"
            )
        return g


class NonlinearCircuit(Circuit):
    """A :class:`Circuit` that additionally accepts nonlinear resistors.

    DC and transient solves run a damped Newton iteration; all linear
    elements (and switches, sources, capacitor companions) are stamped by
    the base class.
    """

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-9,
                 damping: float = 1.0):
        super().__init__()
        if max_iterations < 1:
            raise CircuitError("max_iterations must be >= 1")
        if not 0.0 < damping <= 1.0:
            raise CircuitError("damping must be in (0, 1]")
        self._nonlinear: List[VoltageDependentResistor] = []
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping

    def add_nonlinear_resistor(
        self, node_a: str, node_b: str, current_law, name: str = "NR"
    ) -> VoltageDependentResistor:
        """Register a voltage-dependent resistor."""
        element = VoltageDependentResistor(node_a, node_b, current_law, name)
        self._register(node_a)
        self._register(node_b)
        self._nonlinear.append(element)
        return element

    # ------------------------------------------------------------------
    def _branch_voltage(self, solution: np.ndarray, element) -> float:
        a = self._register(element.node_a)
        b = self._register(element.node_b)
        va = 0.0 if a < 0 else float(solution[a])
        vb = 0.0 if b < 0 else float(solution[b])
        return va - vb

    def _stamp_nonlinear(
        self, matrix: np.ndarray, rhs: np.ndarray, solution: np.ndarray
    ) -> None:
        """Stamp each nonlinear branch's Newton companion model."""
        for element in self._nonlinear:
            v0 = self._branch_voltage(solution, element)
            g_eq = element.conductance(v0)
            i_eq = element.current(v0) - g_eq * v0
            a = self._register(element.node_a)
            b = self._register(element.node_b)
            self._stamp_conductance(matrix, a, b, g_eq)
            if a >= 0:
                rhs[a] -= i_eq
            if b >= 0:
                rhs[b] += i_eq

    def _newton_solve(
        self,
        time: float,
        cap_companion,
        initial: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n = len(self._nodes)
        m = len(self._voltage_sources)
        solution = (
            initial.copy() if initial is not None else np.zeros(n + m)
        )
        for _ in range(self.max_iterations):
            matrix, rhs = self._assemble(time, cap_companion)
            self._stamp_nonlinear(matrix, rhs, solution)
            new_solution = self._solve_system(matrix, rhs)
            delta = new_solution - solution
            solution = solution + self.damping * delta
            if np.max(np.abs(delta)) < self.tolerance:
                return solution
        raise ConvergenceError(
            f"Newton iteration did not converge in {self.max_iterations} steps"
        )

    # ------------------------------------------------------------------
    def solve_dc(self, time: float = 0.0) -> DCResult:
        """Nonlinear DC operating point (Newton)."""
        if not self._nodes:
            raise CircuitError("empty circuit")
        if not self._nonlinear:
            return super().solve_dc(time)
        solution = self._newton_solve(time, cap_companion=None)
        n = len(self._nodes)
        voltages = {name: float(solution[idx]) for name, idx in self._nodes.items()}
        currents = {
            source.name: float(solution[n + i])
            for i, source in enumerate(self._voltage_sources)
        }
        return DCResult(voltages, currents)

    def solve_transient(
        self, t_stop: float, dt: float, t_start: float = 0.0
    ) -> TransientResult:
        """Backward-Euler transient with an inner Newton loop per step."""
        if not self._nonlinear:
            return super().solve_transient(t_stop, dt, t_start)
        if dt <= 0.0 or t_stop <= t_start:
            raise CircuitError("need dt > 0 and t_stop > t_start")
        if not self._nodes:
            raise CircuitError("empty circuit")

        steps = int(round((t_stop - t_start) / dt))
        times = t_start + dt * np.arange(steps + 1)
        n = len(self._nodes)
        waveforms = np.zeros((steps + 1, n))

        cap_voltages = [c.initial_voltage for c in self._capacitors]

        def node_voltage(solution: np.ndarray, node: str) -> float:
            index = self._register(node)
            return 0.0 if index < 0 else float(solution[index])

        companion0 = [
            (c.capacitance / dt * 1e3, c.capacitance / dt * 1e3 * v0)
            for c, v0 in zip(self._capacitors, cap_voltages)
        ]
        solution = self._newton_solve(times[0], companion0)
        waveforms[0] = solution[:n]
        cap_voltages = [
            node_voltage(solution, c.node_a) - node_voltage(solution, c.node_b)
            for c in self._capacitors
        ]

        for step in range(1, steps + 1):
            time = times[step]
            companion = [
                (c.capacitance / dt, c.capacitance / dt * v_prev)
                for c, v_prev in zip(self._capacitors, cap_voltages)
            ]
            solution = self._newton_solve(time, companion, initial=solution)
            waveforms[step] = solution[:n]
            cap_voltages = [
                node_voltage(solution, c.node_a) - node_voltage(solution, c.node_b)
                for c in self._capacitors
            ]

        voltages = {name: waveforms[:, idx].copy() for name, idx in self._nodes.items()}
        return TransientResult(times, voltages)
