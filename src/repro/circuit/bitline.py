"""Bit-line RC model with unselected-cell leakage and Elmore delay.

The paper's test chip puts **128 cells on each bit line**.  Two bit-line
effects enter the scheme comparison:

* the 127 unselected cells leak through their nominally-off access
  transistors, diverting a small part of the read current (the paper notes
  this leakage "has been considered in our simulation");
* settling: the destructive scheme samples *both* reads onto capacitors at
  the end of the bit line, so both reads pay the extra Elmore delay of the
  sampling capacitor; the nondestructive scheme's second read drives only
  the tens-of-MΩ divider, whose loading does not change the bit-line Elmore
  delay — this is why its second read is faster (paper §V).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["BitlineModel", "PAPER_BITLINE"]


@dataclasses.dataclass(frozen=True)
class BitlineModel:
    """Distributed-RC bit line with per-cell parasitics.

    Attributes
    ----------
    cells_per_bitline:
        Number of cells sharing the bit line (paper: 128).
    wire_resistance_per_cell:
        Metal resistance per cell pitch [Ω].
    wire_capacitance_per_cell:
        Wire + drain-junction capacitance per cell pitch [F].
    off_cell_leakage_resistance:
        Equivalent resistance to ground of one *unselected* cell [Ω]
        (sub-threshold leakage of its off access transistor).
    """

    cells_per_bitline: int = 128
    wire_resistance_per_cell: float = 2.0
    wire_capacitance_per_cell: float = 0.4e-15
    off_cell_leakage_resistance: float = 5e9

    def __post_init__(self) -> None:
        if self.cells_per_bitline < 1:
            raise ConfigurationError("cells_per_bitline must be >= 1")
        if self.wire_resistance_per_cell < 0.0 or self.wire_capacitance_per_cell < 0.0:
            raise ConfigurationError("wire parasitics must be non-negative")
        if self.off_cell_leakage_resistance <= 0.0:
            raise ConfigurationError("off_cell_leakage_resistance must be positive")

    @property
    def total_wire_resistance(self) -> float:
        """End-to-end metal resistance [Ω]."""
        return self.wire_resistance_per_cell * self.cells_per_bitline

    @property
    def total_capacitance(self) -> float:
        """Total bit-line capacitance [F]."""
        return self.wire_capacitance_per_cell * self.cells_per_bitline

    @property
    def leakage_conductance(self) -> float:
        """Combined conductance of the unselected cells [S]."""
        off_cells = self.cells_per_bitline - 1
        return off_cells / self.off_cell_leakage_resistance

    def leakage_current(self, bitline_voltage: float) -> float:
        """Read current stolen by the unselected cells at the given bit-line
        voltage [A]."""
        return bitline_voltage * self.leakage_conductance

    def voltage_error(self, bitline_voltage: float, cell_resistance: float) -> float:
        """Absolute bit-line voltage error caused by unselected-cell leakage
        when the selected cell presents ``cell_resistance`` [V].

        The leakage conductance appears in parallel with the cell, so
        ``ΔV ≈ V · R_cell · G_leak`` to first order.
        """
        return bitline_voltage * cell_resistance * self.leakage_conductance

    def elmore_delay(self, extra_capacitance: float = 0.0, driver_resistance: float = 0.0) -> float:
        """Elmore delay of the bit line [s] with an optional lumped capacitor
        at the far end (the destructive scheme's sampling capacitor).

        Lumped approximation: distributed wire contributes ``R_w C_w / 2``;
        the end capacitor sees the full wire plus driver resistance.
        """
        if extra_capacitance < 0.0 or driver_resistance < 0.0:
            raise ConfigurationError("capacitance/resistance must be non-negative")
        r_total = self.total_wire_resistance + driver_resistance
        distributed = 0.5 * self.total_wire_resistance * self.total_capacitance
        driver_term = driver_resistance * self.total_capacitance
        end_cap = r_total * extra_capacitance
        return distributed + driver_term + end_cap

    def settling_time(
        self,
        source_resistance: float,
        extra_capacitance: float = 0.0,
        tolerance: float = 0.01,
        switch_resistance: Optional[float] = None,
    ) -> float:
        """Time for the bit-line voltage to settle within ``tolerance``.

        The dominant time constant is the source resistance (cell + access
        transistor, since the read current source's own impedance is high —
        the cell resistance sets the discharge path) times the total
        capacitance, plus the sampling-switch term when a capacitor is
        attached (``switch_resistance`` defaults to zero).
        """
        if not 0.0 < tolerance < 1.0:
            raise ConfigurationError("tolerance must be in (0, 1)")
        if source_resistance <= 0.0:
            raise ConfigurationError("source_resistance must be positive")
        tau = (source_resistance + self.total_wire_resistance) * self.total_capacitance
        if extra_capacitance > 0.0:
            r_switch = switch_resistance if switch_resistance is not None else 0.0
            tau += (source_resistance + self.total_wire_resistance + r_switch) * extra_capacitance
        return -tau * math.log(tolerance)


#: The paper's bit-line organization: 128 cells per bit line.
PAPER_BITLINE = BitlineModel()
