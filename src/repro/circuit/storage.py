"""Sample-and-hold capacitors (C1/C2 of paper Figs. 3 and 5).

The first-read bit-line voltage is parked on a capacitor while the second
read proceeds.  Two non-idealities matter for the comparison between the
schemes:

* **droop** — leakage discharges the stored voltage during the hold time;
* **bit-line loading** — in the destructive scheme *both* reads drive a
  capacitor hanging on the bit line, adding to the Elmore delay; the
  nondestructive scheme's second read drives only the high-impedance
  divider, which is why its second read settles faster (paper §V).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError

__all__ = ["SampleCapacitor"]


@dataclasses.dataclass
class SampleCapacitor:
    """Storage capacitor with charge/hold dynamics.

    ``stored_voltage`` may be a scalar or an ndarray: batched read kernels
    sample a whole array of bit-line voltages onto one logical capacitor
    (one physical instance per bit, identical RC values), and every
    charge/droop expression broadcasts elementwise.  Durations stay
    scalars, so the exponential factors are computed once in scalar
    ``math.exp`` — bit-exact with the per-bit scalar path.

    Attributes
    ----------
    capacitance:
        Storage capacitance [F].
    switch_resistance:
        On-resistance of the sampling switch (SLT1/SLT2) [Ω].
    leakage_resistance:
        Equivalent parallel leakage during hold [Ω].
    """

    capacitance: float = 50e-15
    switch_resistance: float = 2e3
    leakage_resistance: float = 1e12
    stored_voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ConfigurationError("capacitance must be positive")
        if self.switch_resistance <= 0.0:
            raise ConfigurationError("switch_resistance must be positive")
        if self.leakage_resistance <= 0.0:
            raise ConfigurationError("leakage_resistance must be positive")

    @property
    def charge_time_constant(self) -> float:
        """RC constant while sampling through the switch [s]."""
        return self.switch_resistance * self.capacitance

    def settling_time(self, tolerance: float = 0.001) -> float:
        """Time to charge within ``tolerance`` (fractional) of the source."""
        if not 0.0 < tolerance < 1.0:
            raise ConfigurationError("tolerance must be in (0, 1)")
        return -self.charge_time_constant * math.log(tolerance)

    def sample(self, source_voltage, duration: float):
        """Charge toward ``source_voltage`` (scalar or per-bit array) for
        ``duration`` seconds and return (and store) the resulting
        capacitor voltage."""
        if duration < 0.0:
            raise ConfigurationError("duration must be non-negative")
        alpha = math.exp(-duration / self.charge_time_constant)
        self.stored_voltage = source_voltage + (self.stored_voltage - source_voltage) * alpha
        return self.stored_voltage

    def hold(self, duration: float):
        """Let the stored voltage (scalar or array) droop through leakage
        for ``duration``."""
        if duration < 0.0:
            raise ConfigurationError("duration must be non-negative")
        tau = self.leakage_resistance * self.capacitance
        self.stored_voltage *= math.exp(-duration / tau)
        return self.stored_voltage

    def droop_after(self, duration: float):
        """Voltage lost to droop after ``duration`` of hold [V] (does not
        mutate the stored value; broadcasts over array-valued storage)."""
        tau = self.leakage_resistance * self.capacitance
        return self.stored_voltage * (1.0 - math.exp(-duration / tau))

    def fresh(self) -> "SampleCapacitor":
        """A discharged copy with the same RC values — the per-read
        instance a scheme creates from its capacitor template."""
        return SampleCapacitor(
            self.capacitance, self.switch_resistance, self.leakage_resistance
        )

    def reset(self) -> None:
        """Discharge the capacitor."""
        self.stored_voltage = 0.0
