"""Distributed bit-line modelling: RC π-ladder netlists.

The lumped :class:`~repro.circuit.bitline.BitlineModel` uses the Elmore
approximation.  This module builds the *distributed* wire as an N-segment
RC ladder inside an MNA circuit so the approximation can be checked against
a true transient — and so cell position along the bit line (near/far from
the sense node) can be studied.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.circuit.bitline import BitlineModel
from repro.circuit.mna import Circuit, TransientResult
from repro.errors import ConfigurationError

__all__ = ["build_bitline_ladder", "bitline_step_response", "StepResponse"]


def build_bitline_ladder(
    circuit: Circuit,
    bitline: BitlineModel,
    segments: int,
    near_node: str = "BL",
    prefix: str = "bl",
) -> str:
    """Stamp an N-segment RC π-ladder for the bit line into ``circuit``.

    The ladder runs from ``near_node`` (the sense-amplifier end) to the far
    end; returns the far-end node name.  Each segment carries
    ``R_wire/segments`` series resistance and ``C_wire/segments`` shunt
    capacitance (half at each side, π-style, folded into full caps at the
    internal nodes).
    """
    if segments < 1:
        raise ConfigurationError("segments must be >= 1")
    r_segment = bitline.total_wire_resistance / segments
    c_segment = bitline.total_capacitance / segments
    previous = near_node
    # Half-capacitor at the near end.
    circuit.add_capacitor(previous, "gnd", c_segment / 2.0, name=f"{prefix}_c0")
    for index in range(1, segments + 1):
        node = f"{prefix}_{index}" if index < segments else f"{prefix}_far"
        circuit.add_resistor(previous, node, r_segment, name=f"{prefix}_r{index}")
        cap = c_segment if index < segments else c_segment / 2.0
        circuit.add_capacitor(node, "gnd", cap, name=f"{prefix}_c{index}")
        previous = node
    return previous


@dataclasses.dataclass(frozen=True)
class StepResponse:
    """Far-cell read step response of a distributed bit line."""

    transient: TransientResult
    final_voltage: float
    delay_50: float    #: 50% crossing time [s]
    settle_99: float   #: 1% settling time [s]
    elmore_estimate: float  #: lumped-model Elmore delay for comparison [s]


def bitline_step_response(
    bitline: BitlineModel,
    cell_resistance: float,
    read_current: float = 200e-6,
    segments: int = 16,
    duration: Optional[float] = None,
    dt: Optional[float] = None,
) -> StepResponse:
    """Simulate a read-current step into a cell at the *far* end of a
    distributed bit line, observing the near (sense) end.

    The worst-case topology: current is injected and the cell conducts at
    the far end; the sense node sees the full distributed delay.
    """
    if cell_resistance <= 0.0 or read_current <= 0.0:
        raise ConfigurationError("cell_resistance and read_current must be positive")
    circuit = Circuit()
    far = build_bitline_ladder(circuit, bitline, segments, near_node="BL")
    circuit.add_current_source("gnd", far, read_current, name="I_read")
    circuit.add_resistor(far, "gnd", cell_resistance, name="R_cell")

    tau = (cell_resistance + bitline.total_wire_resistance) * bitline.total_capacitance
    if duration is None:
        duration = 12.0 * max(tau, 1e-12)
    if dt is None:
        dt = duration / 2400.0
    transient = circuit.solve_transient(duration, dt)

    waveform = transient["BL"]
    final = float(waveform[-1])
    times = transient.times

    def crossing(level: float) -> float:
        above = np.nonzero(waveform >= level * final)[0]
        return float(times[above[0]]) if above.size else float(times[-1])

    return StepResponse(
        transient=transient,
        final_voltage=final,
        delay_50=crossing(0.5),
        settle_99=crossing(0.99),
        elmore_estimate=bitline.elmore_delay(driver_resistance=cell_resistance),
    )
