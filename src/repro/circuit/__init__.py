"""Analog circuit substrate: nodal analysis plus the sensing peripherals.

The paper validates its scheme with SPICE transients (Fig. 10) and a test
chip.  This package is the substitute substrate: a small Modified Nodal
Analysis (MNA) engine with DC and backward-Euler transient solvers, plus
behavioural models of the circuit blocks around the cell — bit line,
sample-and-hold capacitors, the high-impedance voltage divider, and the
auto-zero sense amplifier.
"""

from repro.circuit.bitline import BitlineModel, PAPER_BITLINE
from repro.circuit.divider import VoltageDivider
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.circuit.mna import Circuit, DCResult, TransientResult
from repro.circuit.nonlinear import (
    NonlinearCircuit,
    VoltageDependentResistor,
    mtj_branch_current,
)
from repro.circuit.distributed import bitline_step_response, build_bitline_ladder
from repro.circuit.latch import RegenerativeLatch
from repro.circuit.noise import NoiseBudget, johnson_noise_rms, sampled_noise_rms
from repro.circuit.sense_amp import SenseAmplifier, SenseDecision
from repro.circuit.storage import SampleCapacitor

__all__ = [
    "Circuit",
    "NonlinearCircuit",
    "VoltageDependentResistor",
    "mtj_branch_current",
    "DCResult",
    "TransientResult",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Switch",
    "BitlineModel",
    "PAPER_BITLINE",
    "VoltageDivider",
    "SampleCapacitor",
    "build_bitline_ladder",
    "bitline_step_response",
    "RegenerativeLatch",
    "NoiseBudget",
    "johnson_noise_rms",
    "sampled_noise_rms",
    "SenseAmplifier",
    "SenseDecision",
]
