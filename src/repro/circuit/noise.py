"""Thermal-noise budget of the sensing path.

The paper's margins are process-variation-limited; this module verifies
that claim quantitatively.  The dominant electronic noise on the bit line
is Johnson–Nyquist noise of the cell resistance, integrated over the sense
bandwidth set by the bit-line RC:

    v_rms = sqrt(4 k_B T R B),   B ≈ 1 / (4 R C)  (the RC noise bandwidth)

which gives the textbook ``kT/C`` sampled-noise result for the stored
voltage on C1.  At the paper's operating point (~3 kΩ cell, ~100 fF
sampling capacitor, 300 K) the rms noise is a fraction of a millivolt —
tens of sigma below the 12.1 mV margin, so the nondestructive scheme is
variation-limited, not noise-limited.
"""

from __future__ import annotations

import dataclasses
import math

from scipy.stats import norm

from repro.errors import ConfigurationError
from repro.units import BOLTZMANN, ROOM_TEMPERATURE

__all__ = ["johnson_noise_rms", "sampled_noise_rms", "NoiseBudget"]


def johnson_noise_rms(
    resistance: float, bandwidth: float, temperature: float = ROOM_TEMPERATURE
) -> float:
    """RMS Johnson–Nyquist voltage noise [V] over ``bandwidth`` [Hz]."""
    if resistance <= 0.0 or bandwidth <= 0.0 or temperature <= 0.0:
        raise ConfigurationError("resistance, bandwidth, temperature must be positive")
    return math.sqrt(4.0 * BOLTZMANN * temperature * resistance * bandwidth)


def sampled_noise_rms(capacitance: float, temperature: float = ROOM_TEMPERATURE) -> float:
    """RMS ``kT/C`` noise of a sampled voltage [V] — the noise frozen onto
    C1 when SLT1 opens, independent of the switch resistance."""
    if capacitance <= 0.0 or temperature <= 0.0:
        raise ConfigurationError("capacitance and temperature must be positive")
    return math.sqrt(BOLTZMANN * temperature / capacitance)


@dataclasses.dataclass(frozen=True)
class NoiseBudget:
    """Noise analysis of one sensing comparison.

    Attributes
    ----------
    margin:
        The design sense margin [V].
    sample_capacitance:
        C1 [F] (kT/C term on the stored first read).
    source_resistance:
        Cell + transistor resistance during the live read [Ω].
    live_bandwidth:
        Noise bandwidth of the live (second-read) path [Hz].
    temperature:
        [K].
    """

    margin: float
    sample_capacitance: float = 100e-15
    source_resistance: float = 3000.0
    live_bandwidth: float = 1e9
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.margin <= 0.0:
            raise ConfigurationError("margin must be positive")

    @property
    def sampled_noise(self) -> float:
        """kT/C noise on the stored first read [V]."""
        return sampled_noise_rms(self.sample_capacitance, self.temperature)

    @property
    def live_noise(self) -> float:
        """Johnson noise on the live comparison input [V]."""
        return johnson_noise_rms(
            self.source_resistance, self.live_bandwidth, self.temperature
        )

    @property
    def total_noise(self) -> float:
        """RSS of both comparison inputs [V]."""
        return math.sqrt(self.sampled_noise**2 + self.live_noise**2)

    @property
    def margin_sigmas(self) -> float:
        """How many noise sigmas the margin spans."""
        return self.margin / self.total_noise

    @property
    def noise_error_probability(self) -> float:
        """P(noise alone flips the comparison) — the Gaussian tail at the
        margin."""
        return float(norm.sf(self.margin_sigmas))

    @property
    def is_variation_limited(self) -> bool:
        """True when noise contributes negligibly (< 1e-12 flip probability)
        relative to the process-variation failure modes the paper studies."""
        return self.noise_error_probability < 1e-12
