"""Circuit elements for the MNA engine.

Element values may be constants or callables of time ``f(t)`` so the same
netlist describes every phase of a read operation (switches opening and
closing, read-current steps).  Node names are arbitrary strings; ``"0"`` and
``"gnd"`` are ground.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Union

from repro.errors import CircuitError

__all__ = ["Resistor", "Capacitor", "CurrentSource", "VoltageSource", "Switch"]

Value = Union[float, Callable[[float], float]]


def evaluate(value: Value, time: float) -> float:
    """Evaluate a constant or time-dependent element value at ``time``."""
    if callable(value):
        return float(value(time))
    return float(value)


@dataclasses.dataclass
class Resistor:
    """Linear resistor between ``node_a`` and ``node_b``.

    ``resistance`` may be time-dependent — this is how nonlinear devices
    (MTJ, transistor) are linearized per operating phase.
    """

    node_a: str
    node_b: str
    resistance: Value
    name: str = "R"

    def conductance(self, time: float) -> float:
        r = evaluate(self.resistance, time)
        if r <= 0.0:
            raise CircuitError(f"{self.name}: non-positive resistance {r} at t={time}")
        return 1.0 / r


@dataclasses.dataclass
class Capacitor:
    """Linear capacitor with an initial-condition voltage (a→b)."""

    node_a: str
    node_b: str
    capacitance: float
    initial_voltage: float = 0.0
    name: str = "C"

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise CircuitError(f"{self.name}: capacitance must be positive")


@dataclasses.dataclass
class CurrentSource:
    """Ideal current source pushing current out of ``node_from`` into
    ``node_to`` (i.e. conventional current flows from→to through the
    external circuit is *into* ``node_to``)."""

    node_from: str
    node_to: str
    current: Value
    name: str = "I"


@dataclasses.dataclass
class VoltageSource:
    """Ideal voltage source fixing ``V(node_plus) - V(node_minus)``."""

    node_plus: str
    node_minus: str
    voltage: Value
    name: str = "V"


@dataclasses.dataclass
class Switch:
    """Voltage-controlled switch modelled as a two-valued resistor.

    ``closed`` is a callable of time returning truthy when the switch
    conducts.  ``r_on``/``r_off`` keep the matrix well-conditioned.
    """

    node_a: str
    node_b: str
    closed: Callable[[float], bool]
    r_on: float = 100.0
    r_off: float = 1.0e12
    name: str = "S"

    def __post_init__(self) -> None:
        if self.r_on <= 0.0 or self.r_off <= self.r_on:
            raise CircuitError(f"{self.name}: need 0 < r_on < r_off")

    def conductance(self, time: float) -> float:
        return 1.0 / (self.r_on if self.closed(time) else self.r_off)
