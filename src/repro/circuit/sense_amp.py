"""Auto-zero voltage sense amplifier with built-in data latch.

The paper's test chip uses an auto-zero sense amplifier to cancel device
mismatch; what remains is a residual input offset plus a finite resolution
window — the paper quotes **"a sense margin about 8 mV"** required for a
reliable decision, which is the pass/fail threshold in its Fig. 11.

The behavioural model: decision = sign(V_plus - V_minus - offset), valid
only when the differential input exceeds the resolution window; inside the
window the outcome is metastable (resolved randomly if an RNG is supplied).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SenseAmplifier", "SenseDecision"]


class SenseDecision(enum.Enum):
    """Outcome of a sense-amplifier comparison."""

    HIGH = "high"          #: V_plus decisively above V_minus
    LOW = "low"            #: V_plus decisively below V_minus
    METASTABLE = "metastable"  #: inside the resolution window


@dataclasses.dataclass
class SenseAmplifier:
    """Latched comparator with offset and resolution window.

    Attributes
    ----------
    offset:
        Residual input-referred offset after auto-zero [V] (adds to V_plus).
    resolution:
        Minimum differential input for a deterministic decision [V]
        (paper: 8 mV).
    raw_offset:
        Pre-auto-zero offset [V]; :meth:`auto_zero` divides it down.
    auto_zero_rejection:
        Factor by which auto-zeroing shrinks ``raw_offset``.
    """

    offset: float = 0.0
    resolution: float = 8.0e-3
    raw_offset: float = 0.0
    auto_zero_rejection: float = 100.0

    def __post_init__(self) -> None:
        if self.resolution < 0.0:
            raise ConfigurationError("resolution must be non-negative")
        if self.auto_zero_rejection < 1.0:
            raise ConfigurationError("auto_zero_rejection must be >= 1")

    def auto_zero(self) -> None:
        """Run the auto-zero phase: the residual offset becomes the raw
        offset divided by the rejection factor."""
        self.offset = self.raw_offset / self.auto_zero_rejection

    def differential(self, v_plus: float, v_minus: float) -> float:
        """Effective differential input including offset [V]."""
        return v_plus - v_minus + self.offset

    def compare(
        self,
        v_plus: float,
        v_minus: float,
        rng: Optional[np.random.Generator] = None,
    ) -> SenseDecision:
        """Latch a decision.

        Returns ``METASTABLE`` when the effective differential input lies
        inside the resolution window and no RNG is given; with an RNG the
        metastable case resolves to a random rail (what real latches do).
        """
        diff = self.differential(v_plus, v_minus)
        if abs(diff) >= self.resolution:
            return SenseDecision.HIGH if diff > 0.0 else SenseDecision.LOW
        if rng is None:
            return SenseDecision.METASTABLE
        return SenseDecision.HIGH if rng.random() < 0.5 else SenseDecision.LOW

    def compare_bit(
        self,
        v_plus: float,
        v_minus: float,
        rng: Optional[np.random.Generator] = None,
    ) -> Optional[int]:
        """Decision as a bit: 1 if plus rail wins, 0 if minus, ``None`` if
        metastable."""
        decision = self.compare(v_plus, v_minus, rng)
        if decision is SenseDecision.METASTABLE:
            return None
        return 1 if decision is SenseDecision.HIGH else 0

    def compare_with_flag(
        self,
        v_plus: float,
        v_minus: float,
        rng: Optional[np.random.Generator] = None,
    ):
        """:meth:`compare_bit` plus the resolution-window flag.

        Returns ``(bit, metastable)``.  ``metastable`` is True whenever the
        effective differential input lies inside the resolution window —
        even when an RNG resolved the latch to a random rail (real latches
        expose late resolution, which is what read-retry controllers key
        on).  The RNG draw order is identical to :meth:`compare_bit`.
        """
        diff = self.differential(v_plus, v_minus)
        if abs(diff) >= self.resolution:
            return (1 if diff > 0.0 else 0), False
        if rng is None:
            return None, True
        return (1 if rng.random() < 0.5 else 0), True

    def compare_bits(
        self,
        v_plus,
        v_minus,
        rng: Optional[np.random.Generator] = None,
        offset=None,
    ):
        """Vectorized :meth:`compare_bit` over rail arrays.

        Returns ``(bits, metastable)``: ``bits`` is an ``int8`` array (1 =
        plus rail, 0 = minus rail, -1 = metastable left unresolved because
        no RNG was given) and ``metastable`` the mask of comparisons inside
        the resolution window.  With an RNG, metastable bits resolve to a
        random rail, consuming one draw per metastable bit in ascending
        index order — exactly the stream a sequential loop of
        :meth:`compare_bit` calls would consume.  ``offset`` (scalar or
        per-bit array) overrides the amplifier's own offset.
        """
        off = self.offset if offset is None else offset
        diff = np.asarray(v_plus, dtype=float) - np.asarray(v_minus, dtype=float) + off
        bits = (diff > 0.0).astype(np.int8)
        metastable = np.abs(diff) < self.resolution
        if rng is None:
            bits[metastable] = -1
        elif metastable.any():
            draws = rng.random(int(np.count_nonzero(metastable)))
            bits[metastable] = (draws < 0.5).astype(np.int8)
        return bits, metastable

    @classmethod
    def sampled(
        cls,
        rng: np.random.Generator,
        raw_offset_sigma: float = 20e-3,
        resolution: float = 8.0e-3,
        auto_zero_rejection: float = 100.0,
        auto_zeroed: bool = True,
    ) -> "SenseAmplifier":
        """Draw an instance with a random raw offset; by default the
        auto-zero phase has already run."""
        amp = cls(
            offset=0.0,
            resolution=resolution,
            raw_offset=float(rng.normal(0.0, raw_offset_sigma)),
            auto_zero_rejection=auto_zero_rejection,
        )
        if auto_zeroed:
            amp.auto_zero()
        else:
            amp.offset = amp.raw_offset
        return amp
