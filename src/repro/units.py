"""Unit helpers and physical constants.

Everything inside :mod:`repro` uses base SI units: ohms, amperes, volts,
seconds, farads, kelvin.  These helpers exist so that call sites can say
``ua(200)`` instead of ``200e-6`` and stay readable, and so that reports can
format values back into engineering notation.
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Room temperature used throughout the paper's experiments [K].
ROOM_TEMPERATURE = 300.0


def ua(value: float) -> float:
    """Convert microamperes to amperes."""
    return value * 1e-6

def ma(value: float) -> float:
    """Convert milliamperes to amperes."""
    return value * 1e-3

def mv(value: float) -> float:
    """Convert millivolts to volts."""
    return value * 1e-3

def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9

def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12

def ff(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * 1e-15

def pf(value: float) -> float:
    """Convert picofarads to farads."""
    return value * 1e-12

def kohm(value: float) -> float:
    """Convert kiloohms to ohms."""
    return value * 1e3

def mohm(value: float) -> float:
    """Convert megaohms to ohms."""
    return value * 1e6

def nm(value: float) -> float:
    """Convert nanometers to meters."""
    return value * 1e-9

def angstrom(value: float) -> float:
    """Convert angstroms to meters."""
    return value * 1e-10


_PREFIXES = (
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "µ"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
)


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``format_si(2e-4,
    'A')`` returns ``'200 µA'``.
    """
    if value == 0.0:
        return f"0 {unit}"
    if math.isnan(value):
        return f"nan {unit}"
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}"
    magnitude = abs(value)
    scale, prefix = _PREFIXES[-1]
    for candidate_scale, candidate_prefix in _PREFIXES:
        if magnitude < candidate_scale * 1000.0:
            scale, prefix = candidate_scale, candidate_prefix
            break
    scaled = value / scale
    return f"{scaled:.{digits}g} {prefix}{unit}"
