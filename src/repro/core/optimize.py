"""Read-current-ratio optimization (paper Eqs. 5 and 10).

Both self-reference schemes fix the second-read current at the maximum
non-disturbing value ``I_max`` and choose the ratio ``β = I_R2 / I_R1`` to
*balance* the two margins, ``SM0(β) = SM1(β)`` — the balanced point
maximizes ``min(SM0, SM1)`` because ``SM1`` falls and ``SM0`` rises
monotonically with β.

Two solvers per scheme:

* **closed form** — the paper's Eqs. (5)/(10) under a linear roll-off
  approximation ``ΔR_X(I) = ΔR_Xmax · I / I_max`` (quadratic in β);
* **numeric** — Brent root-finding on the exact margin imbalance using the
  full roll-off model; this is what the benchmarks use.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Tuple

from scipy.optimize import brentq

from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair, destructive_margins, nondestructive_margins
from repro.errors import ConfigurationError, ConvergenceError

__all__ = [
    "BetaOptimum",
    "optimize_beta_destructive",
    "optimize_beta_nondestructive",
    "closed_form_beta_destructive",
    "closed_form_beta_nondestructive",
]


@dataclasses.dataclass(frozen=True)
class BetaOptimum:
    """Optimized operating point of a self-reference scheme."""

    beta: float          #: optimal read-current ratio
    margins: MarginPair  #: margins at the optimum (balanced)
    i_read1: float       #: first-read current [A]
    i_read2: float       #: second-read current [A]

    @property
    def max_sense_margin(self) -> float:
        """The balanced margin ``min(SM0, SM1)`` at the optimum [V]."""
        return self.margins.min_margin


def _solve_balanced_beta(
    imbalance: Callable[[float], float],
    lower: float,
    upper: float,
) -> float:
    """Find the β where SM1(β) - SM0(β) crosses zero.

    Scans for a sign-change bracket inside ``(lower, upper)`` first, since
    the imbalance may not change sign over the full interval for
    pathological devices.
    """
    samples = 64
    previous_beta = lower
    previous_value = imbalance(lower)
    for index in range(1, samples + 1):
        beta = lower + (upper - lower) * index / samples
        value = imbalance(beta)
        if previous_value == 0.0:
            return previous_beta
        if previous_value * value < 0.0:
            return float(brentq(imbalance, previous_beta, beta, xtol=1e-10))
        previous_beta, previous_value = beta, value
    raise ConvergenceError(
        f"no balanced beta in ({lower}, {upper}): margins never cross"
    )


def optimize_beta_destructive(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta_bounds: Tuple[float, float] = (1.0 + 1e-6, 10.0),
) -> BetaOptimum:
    """Numerically optimal β for the destructive self-reference scheme."""

    def imbalance(beta: float) -> float:
        return destructive_margins(cell, i_read2, beta).imbalance

    beta = _solve_balanced_beta(imbalance, *beta_bounds)
    margins = destructive_margins(cell, i_read2, beta)
    return BetaOptimum(beta, margins, i_read2 / beta, i_read2)


def optimize_beta_nondestructive(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    beta_bounds: Tuple[float, float] = (1.0 + 1e-6, 10.0),
) -> BetaOptimum:
    """Numerically optimal β for the nondestructive scheme at ratio ``α``."""

    def imbalance(beta: float) -> float:
        return nondestructive_margins(cell, i_read2, beta, alpha=alpha).imbalance

    beta = _solve_balanced_beta(imbalance, *beta_bounds)
    margins = nondestructive_margins(cell, i_read2, beta, alpha=alpha)
    return BetaOptimum(beta, margins, i_read2 / beta, i_read2)


def _linear_rolloff_inputs(cell: Cell1T1J, i_read2: float) -> Tuple[float, float, float, float]:
    """Extract (R_L2+R_T, R_H0+R_L0+2R_T, total roll-off at I_R2, R_T)."""
    params = cell.mtj.params
    r_t = float(cell.transistor.resistance(i_read2))
    x2 = i_read2 / params.i_read_max
    dr_total = (params.dr_high_max + params.dr_low_max) * x2
    r_l2 = params.r_low - params.dr_low_max * x2
    s0 = params.r_high + params.r_low + 2.0 * r_t
    return r_l2 + r_t, s0, dr_total, r_t


def closed_form_beta_destructive(cell: Cell1T1J, i_read2: float = 200e-6) -> float:
    """Paper Eq. (5): optimal β under linear roll-off.

    Balancing ``2 I_R2 (R_L2 + R_T) = I_R1 (R_H1 + R_L1 + 2 R_T)`` with
    ``ΔR_X1 = ΔR_X2 / β`` yields the quadratic

        2 (R_L2 + R_T) β² - (R_H0 + R_L0 + 2 R_T) β + ΔR_total = 0

    whose larger root is the optimum.
    """
    denom, s0, dr_total, _ = _linear_rolloff_inputs(cell, i_read2)
    a = 2.0 * denom
    b = s0
    c = dr_total
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        raise ConvergenceError("Eq. (5) has no real solution for this device")
    return (b + math.sqrt(disc)) / (2.0 * a)


def closed_form_beta_nondestructive(
    cell: Cell1T1J, i_read2: float = 200e-6, alpha: float = 0.5
) -> float:
    """Paper Eq. (10): optimal β under linear roll-off at ratio ``α``.

    Balancing ``I_R1 (R_H1 + R_L1 + 2 R_T) = α I_R2 (R_H2 + R_L2 + 2 R_T)``
    yields

        α (S0 - ΔR_total) β² - S0 β + ΔR_total = 0,
        S0 = R_H0 + R_L0 + 2 R_T,

    whose larger root is the optimum.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    _, s0, dr_total, _ = _linear_rolloff_inputs(cell, i_read2)
    a = alpha * (s0 - dr_total)
    b = s0
    c = dr_total
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        raise ConvergenceError("Eq. (10) has no real solution for this device")
    return (b + math.sqrt(disc)) / (2.0 * a)
