"""Sense-margin mathematics for all three schemes.

This module is the analytic heart of the reproduction: the closed-form
bit-line-voltage margins of the paper's Eqs. (1)–(10), in two flavours:

* scalar functions operating on a :class:`~repro.core.cell.Cell1T1J` (used
  by the scheme classes and the optimizers);
* vectorized functions operating on a
  :class:`~repro.device.variation.CellPopulation` (used by the Monte-Carlo
  engine for the 16kb test-chip experiment, paper Fig. 11).

Definitions (``I_R1`` first-read current, ``I_R2 = β I_R1`` second-read
current, ``R_X1/R_X2`` the state-X resistance at those currents,
``R_T1/R_T2`` the access-transistor resistance at those currents):

Conventional (external reference ``V_REF``):
    ``SM0 = V_REF - I_R (R_L + R_T)``, ``SM1 = I_R (R_H + R_T) - V_REF``.

Destructive self-reference (second read is always of the erased "0"):
    ``SM0 = I_R2 (R_L2 + R_T2) - I_R1 (R_L1 + R_T1)``
    ``SM1 = I_R1 (R_H1 + R_T1) - I_R2 (R_L2 + R_T2)``

Nondestructive self-reference (divider ratio ``α``, paper Eqs. 8–9; the
second read is of the *original* state):
    ``SM1 = I_R1 (R_H1 + R_T1) - α I_R2 (R_H2 + R_T2)``
    ``SM0 = α I_R2 (R_L2 + R_T2) - I_R1 (R_L1 + R_T1)``

A bit is readable iff both margins exceed the sense-amplifier window.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJState
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = [
    "MarginPair",
    "conventional_margins",
    "destructive_margins",
    "nondestructive_margins",
    "population_conventional_margins",
    "population_destructive_margins",
    "population_nondestructive_margins",
]


@dataclasses.dataclass(frozen=True)
class MarginPair:
    """Sense margins for the two stored values [V]."""

    sm0: float  #: margin when the cell stores "0" (parallel / low R)
    sm1: float  #: margin when the cell stores "1" (anti-parallel / high R)

    @property
    def min_margin(self) -> float:
        """The binding margin — the worse of the two."""
        return min(self.sm0, self.sm1)

    @property
    def is_balanced(self) -> bool:
        """True when the two margins are equal to within 1 µV (the
        optimizers' target condition)."""
        return abs(self.sm0 - self.sm1) < 1.0e-6

    @property
    def imbalance(self) -> float:
        """``SM1 - SM0`` [V]; the optimizers drive this to zero."""
        return self.sm1 - self.sm0


def _check_currents(i_read2, beta):
    """Validate the read currents and return ``I_R1 = I_R2 / β``.

    Accepts scalars or per-bit arrays for either argument (the production
    test flow trims β and scales ``I_R2`` per die), preserving the scalar
    fast path exactly.
    """
    if np.any(np.asarray(i_read2) <= 0.0):
        raise ConfigurationError(f"i_read2 must be positive, got {i_read2}")
    if np.any(np.asarray(beta) <= 0.0):
        raise ConfigurationError(f"beta must be positive, got {beta}")
    return i_read2 / beta


# ----------------------------------------------------------------------
# Scalar (single-cell) margins
# ----------------------------------------------------------------------
def conventional_margins(cell: Cell1T1J, i_read: float, v_ref: float) -> MarginPair:
    """Margins of external-reference sensing (paper Eqs. 1–2)."""
    if i_read <= 0.0:
        raise ConfigurationError(f"i_read must be positive, got {i_read}")
    v_low = cell.bitline_voltage(i_read, MTJState.PARALLEL)
    v_high = cell.bitline_voltage(i_read, MTJState.ANTIPARALLEL)
    return MarginPair(sm0=v_ref - v_low, sm1=v_high - v_ref)


def destructive_margins(
    cell: Cell1T1J,
    i_read2: float,
    beta: float,
    rtr_shift: float = 0.0,
) -> MarginPair:
    """Margins of the conventional (destructive) self-reference scheme.

    ``rtr_shift`` is the ``ΔR_TR`` added to the transistor resistance at the
    *first* read (paper §IV-B robustness analysis).
    """
    i_read1 = _check_currents(i_read2, beta)
    r_t1 = float(cell.transistor.resistance(i_read1)) + rtr_shift
    r_t2 = float(cell.transistor.resistance(i_read2))
    r_l1 = float(cell.mtj.resistance(i_read1, MTJState.PARALLEL))
    r_h1 = float(cell.mtj.resistance(i_read1, MTJState.ANTIPARALLEL))
    r_l2 = float(cell.mtj.resistance(i_read2, MTJState.PARALLEL))
    v_reference = i_read2 * (r_l2 + r_t2)
    sm0 = v_reference - i_read1 * (r_l1 + r_t1)
    sm1 = i_read1 * (r_h1 + r_t1) - v_reference
    return MarginPair(sm0=sm0, sm1=sm1)


def nondestructive_margins(
    cell: Cell1T1J,
    i_read2: float,
    beta: float,
    alpha: float = 0.5,
    alpha_deviation: float = 0.0,
    rtr_shift: float = 0.0,
) -> MarginPair:
    """Margins of the paper's nondestructive self-reference scheme
    (Eqs. 8–9 with the robustness knobs of Eqs. 14/18–20).

    ``alpha_deviation`` is the fractional divider-ratio error Δ (the realized
    ratio is ``α (1 + Δ)``); ``rtr_shift`` the first-read ``ΔR_TR``.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    i_read1 = _check_currents(i_read2, beta)
    alpha_eff = alpha * (1.0 + alpha_deviation)
    r_t1 = float(cell.transistor.resistance(i_read1)) + rtr_shift
    r_t2 = float(cell.transistor.resistance(i_read2))
    r_l1 = float(cell.mtj.resistance(i_read1, MTJState.PARALLEL))
    r_h1 = float(cell.mtj.resistance(i_read1, MTJState.ANTIPARALLEL))
    r_l2 = float(cell.mtj.resistance(i_read2, MTJState.PARALLEL))
    r_h2 = float(cell.mtj.resistance(i_read2, MTJState.ANTIPARALLEL))
    sm1 = i_read1 * (r_h1 + r_t1) - alpha_eff * i_read2 * (r_h2 + r_t2)
    sm0 = alpha_eff * i_read2 * (r_l2 + r_t2) - i_read1 * (r_l1 + r_t1)
    return MarginPair(sm0=sm0, sm1=sm1)


# ----------------------------------------------------------------------
# Vectorized (population) margins
# ----------------------------------------------------------------------
def population_conventional_margins(
    population: CellPopulation,
    i_read: float,
    v_ref: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bit margins of external-reference sensing.

    The reference is *shared*, so per-bit resistance variation translates
    directly into margin loss — the failure mode motivating the paper.
    Each bit additionally sees its local reference error (the shared
    reference is generated from reference MTJ cells and distributed, both
    subject to mismatch).  Returns ``(sm0, sm1)`` arrays [V].

    ``i_read`` and ``v_ref`` may be scalars or per-bit arrays (the
    production test flow trims the reference and read current per die).
    """
    if np.any(np.asarray(i_read) <= 0.0):
        raise ConfigurationError(f"i_read must be positive, got {i_read}")
    v_ref_bit = v_ref + population.vref_error
    v_low = i_read * (population.resistance_low(i_read) + population.r_tr)
    v_high = i_read * (population.resistance_high(i_read) + population.r_tr)
    return v_ref_bit - v_low, v_high - v_ref_bit


def _population_read_currents(
    population: CellPopulation, i_read2: float, beta: float, with_beta_variation: bool
) -> np.ndarray:
    """Per-bit first-read current including read-driver mismatch."""
    i1 = _check_currents(i_read2, beta)
    if not with_beta_variation:
        return np.broadcast_to(
            np.asarray(i1, dtype=float), (population.size,)
        ).copy()
    beta_bit = beta * (1.0 + population.beta_deviation)
    return i_read2 / beta_bit


def population_destructive_margins(
    population: CellPopulation,
    i_read2: float,
    beta: float,
    rtr_shift: float = 0.0,
    with_beta_variation: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bit margins of the destructive self-reference scheme.

    Self-referencing cancels the bit-to-bit resistance variation to first
    order (each bit is compared against itself), leaving only the roll-off
    difference and the circuit-mismatch terms.
    """
    i_read1 = _population_read_currents(population, i_read2, beta, with_beta_variation)
    r_t1 = population.r_tr + rtr_shift
    r_t2 = population.r_tr
    v_reference = i_read2 * (population.resistance_low(i_read2) + r_t2)
    sm0 = v_reference - i_read1 * (population.resistance_low(i_read1) + r_t1)
    sm1 = i_read1 * (population.resistance_high(i_read1) + r_t1) - v_reference
    return sm0, sm1


def population_nondestructive_margins(
    population: CellPopulation,
    i_read2: float,
    beta: float,
    alpha: float = 0.5,
    rtr_shift: float = 0.0,
    with_beta_variation: bool = True,
    with_alpha_variation: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bit margins of the nondestructive self-reference scheme,
    including per-bit divider-ratio and read-driver mismatch."""
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    i_read1 = _population_read_currents(population, i_read2, beta, with_beta_variation)
    alpha_eff = alpha * (1.0 + population.alpha_deviation) if with_alpha_variation else alpha
    r_t1 = population.r_tr + rtr_shift
    r_t2 = population.r_tr
    v_bo_high = alpha_eff * i_read2 * (population.resistance_high(i_read2) + r_t2)
    v_bo_low = alpha_eff * i_read2 * (population.resistance_low(i_read2) + r_t2)
    sm1 = i_read1 * (population.resistance_high(i_read1) + r_t1) - v_bo_high
    sm0 = v_bo_low - i_read1 * (population.resistance_low(i_read1) + r_t1)
    return sm0, sm1
