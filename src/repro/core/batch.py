"""Struct-of-arrays result of a batched behavioural read.

One :class:`BatchReadResult` is what :meth:`repro.core.base.SensingScheme.
read_many` returns instead of a list of per-bit
:class:`~repro.core.base.ReadResult` objects: every per-bit quantity is a
numpy array, so array-scale experiments (the paper's 16kb test chip, BER
sampling, read-stress campaigns) stay a single NumPy pass instead of a
Python loop materializing one cell object per bit.

The RNG contract is strict: a vectorized kernel must consume random draws
**exactly** as the equivalent sequential loop of scalar ``scheme.read``
calls would — same draws, same order, same conditions — so batched and
per-bit reads are bit-for-bit interchangeable under a fixed seed.
:func:`batch_from_scalar_reads` is that sequential loop, packaged as the
reference implementation (and the baseline the speedup benchmark times).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJState
from repro.device.transistor import FixedResistanceTransistor
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError
from repro.obs.runtime import profiled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.base import ReadResult, SensingScheme

__all__ = ["BatchReadResult", "batch_from_scalar_reads", "materialize_cell"]


@dataclasses.dataclass(frozen=True)
class BatchReadResult:
    """Outcome of one batched read over a cell population.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced the batch.
    bits:
        Sensed bits as ``int8``; ``-1`` marks a metastable comparison left
        unresolved because no RNG was supplied (the batch analogue of
        ``ReadResult.bit is None``).
    expected_bits:
        Ground-truth stored bits before the read started.
    margins:
        Signed differential voltage presented to the sense amplifier per
        bit, positive meaning "correct rail" [V].
    voltages:
        Named internal rail arrays, mirroring the scalar ``ReadResult``
        voltage dict of the producing scheme (``v_bl1``/``v_bl2``/``v_bo``
        for self-reference schemes, ``v_bl``/``v_ref`` for conventional).
    metastable:
        Mask of comparisons that landed inside the sense-amplifier
        resolution window.  With an RNG those bits still resolve (to a
        random rail); the mask lets callers distinguish "read 0" from
        "failed to resolve deterministically".
    data_destroyed:
        Mask of bits whose stored value was lost by the read itself.
    write_pulses / read_pulses:
        Pulse counts of the operation per bit (uniform across a batch).
    attempts:
        Read attempts behind each bit of this batch (uniform; 1 for a
        plain read).  Per-bit attempt counts of a retried batch live on
        :class:`~repro.core.retry.BatchRetryResult`.
    """

    scheme: str
    bits: np.ndarray
    expected_bits: np.ndarray
    margins: np.ndarray
    voltages: Dict[str, np.ndarray]
    metastable: np.ndarray
    data_destroyed: np.ndarray
    write_pulses: int = 0
    read_pulses: int = 1
    attempts: int = 1

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of bits in the batch."""
        return int(self.bits.size)

    @property
    def metastable_count(self) -> int:
        """Comparisons that fell inside the resolution window."""
        return int(np.count_nonzero(self.metastable))

    @property
    def unresolved_mask(self) -> np.ndarray:
        """Bits left without a decision (only possible without an RNG)."""
        return self.bits < 0

    def bit_values(self) -> np.ndarray:
        """Sensed bits with unresolved comparisons mapped to 0 — the word
        packing convention of :meth:`repro.array.array.STTRAMArray
        .read_word`."""
        return np.where(self.bits < 0, 0, self.bits).astype(np.uint8)

    @property
    def correct_mask(self) -> np.ndarray:
        """Bits whose sensed value matches the stored value."""
        return (self.bits >= 0) & (self.bits == self.expected_bits)

    @property
    def error_count(self) -> int:
        """Reads that returned the wrong (or no) value."""
        return int(np.count_nonzero(~self.correct_mask))

    @property
    def error_fraction(self) -> float:
        """``error_count / size`` — the batch's empirical misread rate."""
        return self.error_count / self.size if self.size else 0.0

    @property
    def destroyed_count(self) -> int:
        """Bits whose stored value the read destroyed."""
        return int(np.count_nonzero(self.data_destroyed))

    # ------------------------------------------------------------------
    # Standardized rail access (scheme-name independent)
    # ------------------------------------------------------------------
    @property
    def v_bl1(self) -> np.ndarray:
        """First-read rail: ``v_bl1`` (self-reference) or ``v_bl``."""
        if "v_bl1" in self.voltages:
            return self.voltages["v_bl1"]
        return self.voltages["v_bl"]

    @property
    def v_bl2(self) -> Optional[np.ndarray]:
        """Second-read bit-line rail, or ``None`` for single-read schemes
        (and destructive reads aborted before the second read)."""
        return self.voltages.get("v_bl2")

    @property
    def v_bo(self) -> Optional[np.ndarray]:
        """Compare rail: divider output ``v_bo`` (nondestructive) or the
        shared reference ``v_ref`` (conventional); ``None`` when the
        compare rail is ``v_bl2`` itself (destructive) or never formed."""
        if "v_bo" in self.voltages:
            return self.voltages["v_bo"]
        return self.voltages.get("v_ref")

    # ------------------------------------------------------------------
    # Scalar bridge
    # ------------------------------------------------------------------
    def result(self, index: int) -> "ReadResult":
        """The scalar :class:`~repro.core.base.ReadResult` view of one bit
        — exactly what ``scheme.read`` on that cell would have returned."""
        from repro.core.base import ReadResult

        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        bit = int(self.bits[index])
        return ReadResult(
            bit=None if bit < 0 else bit,
            expected_bit=int(self.expected_bits[index]),
            margin=float(self.margins[index]),
            voltages={
                name: float(values[index]) for name, values in self.voltages.items()
            },
            data_destroyed=bool(self.data_destroyed[index]),
            write_pulses=self.write_pulses,
            read_pulses=self.read_pulses,
            metastable=bool(self.metastable[index]),
            attempts=self.attempts,
        )


def materialize_cell(
    population: CellPopulation, index: int, bit: Optional[int] = None
) -> Cell1T1J:
    """Materialize one population bit as a standalone :class:`Cell1T1J`
    (the per-bit object the scalar read path operates on)."""
    cell = Cell1T1J(
        population.device(index),
        FixedResistanceTransistor(float(population.r_tr[index])),
    )
    if bit is not None:
        cell.state = MTJState.from_bit(int(bit))
    return cell


def check_batch_inputs(population: CellPopulation, states: np.ndarray) -> np.ndarray:
    """Validate a ``read_many`` call and return ``states`` as an ndarray.

    ``states`` must be a mutable integer ndarray of one bit per population
    entry; destructive kernels write the post-read states back into it.
    """
    if not isinstance(states, np.ndarray):
        raise ConfigurationError(
            "states must be a numpy array (it is mutated in place by "
            f"destructive reads), got {type(states).__name__}"
        )
    if states.shape != (population.size,):
        raise ConfigurationError(
            f"states shape {states.shape} does not match population size "
            f"{population.size}"
        )
    return states


@profiled("core.batch_from_scalar_reads")
def batch_from_scalar_reads(
    scheme: "SensingScheme",
    population: CellPopulation,
    states: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> BatchReadResult:
    """Reference batch read: the sequential per-bit loop over scalar
    ``scheme.read`` calls, packed into a :class:`BatchReadResult`.

    This is the behaviour (and RNG stream) every vectorized ``read_many``
    kernel must reproduce bit-for-bit; it also serves as the fallback
    implementation for schemes without a vectorized kernel, and as the
    per-bit baseline of the batch-read speedup benchmark.  ``states`` is
    updated in place with whatever each read leaves behind.
    """
    check_batch_inputs(population, states)
    n = population.size
    results = []
    for index in range(n):
        cell = materialize_cell(population, index, int(states[index]))
        results.append(scheme.read(cell, rng, **kwargs))
        states[index] = cell.stored_bit

    bits = np.array(
        [-1 if r.bit is None else r.bit for r in results], dtype=np.int8
    )
    voltage_names = list(results[0].voltages) if results else []
    voltages = {
        name: np.array([r.voltages.get(name, np.nan) for r in results])
        for name in voltage_names
    }
    return BatchReadResult(
        scheme=scheme.name,
        bits=bits,
        expected_bits=np.array([r.expected_bit for r in results], dtype=np.uint8),
        margins=np.array([r.margin for r in results]),
        voltages=voltages,
        # Scalar reads carry the resolution-window flag even when an RNG
        # resolved the bit, so the fallback's mask matches the kernels'.
        metastable=np.array([r.metastable for r in results], dtype=bool),
        data_destroyed=np.array([r.data_destroyed for r in results], dtype=bool),
        write_pulses=results[0].write_pulses if results else 0,
        read_pulses=results[0].read_pulses if results else 1,
    )
