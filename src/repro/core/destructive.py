"""Conventional (destructive) self-reference sensing — prior art the paper
improves upon (its §II-C, Fig. 3, Eqs. 3–5; original scheme from Jeong et
al., JSSC 2003).

Operation: (1) read at ``I_R1``, park ``V_BL1`` on C1; (2) **erase** — write
"0" into the cell; (3) read the erased cell at ``I_R2 > I_R1``, park
``V_BL2`` on C2; (4) compare; (5) **write back** the sensed value.

The two writes are what the paper attacks: they dominate latency and power,
and between step (2) and step (5) the stored data exists *only* on a
capacitor — a power failure in that window loses the bit (non-volatility
violated).  The implementation models all of that: real switching-model
write pulses, capacitor droop, and an optional injected power-failure point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuit.sense_amp import SenseAmplifier
from repro.circuit.storage import SampleCapacitor
from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import BatchReadResult, check_batch_inputs
from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair, destructive_margins
from repro.device.switching import SwitchingModel
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = ["DestructiveSelfReference"]

#: Phases at which a power failure can be injected.
_FAILURE_PHASES = ("after_erase", "after_second_read", "after_compare")


class DestructiveSelfReference(SensingScheme):
    """Destructive self-reference scheme.

    Parameters
    ----------
    i_read2:
        Second-read current [A]; chosen as the maximum non-disturbing
        current to maximize margin (paper §II-C.2).
    beta:
        Read-current ratio ``I_R2 / I_R1``; the paper's optimized value for
        its device is 1.22.
    rtr_shift:
        ``ΔR_TR`` applied to the first read (robustness studies).
    sense_amp / capacitor:
        Peripheral models; defaults follow the paper (8 mV window).
    switching:
        Spin-torque model used for the erase and write-back pulses; derived
        from the cell's MTJ parameters per read when omitted.
    write_overdrive:
        Write current as a multiple of the critical current (default 1.5 —
        a solid driver).  Lower overdrives make the scheme's write pulses
        stochastic failures (see the A10 write-error-rate ablation).
    """

    name = "destructive self-reference"

    def __init__(
        self,
        i_read2: float = 200e-6,
        beta: float = 1.22,
        rtr_shift: float = 0.0,
        sense_amp: Optional[SenseAmplifier] = None,
        capacitor: Optional[SampleCapacitor] = None,
        switching: Optional[SwitchingModel] = None,
        write_overdrive: float = 1.5,
    ):
        if i_read2 <= 0.0:
            raise ConfigurationError(f"i_read2 must be positive, got {i_read2}")
        if beta <= 1.0:
            raise ConfigurationError(
                f"beta must exceed 1 (I_R2 > I_R1 required by Eq. 3), got {beta}"
            )
        self.i_read2 = float(i_read2)
        self.beta = float(beta)
        self.rtr_shift = float(rtr_shift)
        self.sense_amp = sense_amp if sense_amp is not None else SenseAmplifier()
        if write_overdrive <= 0.0:
            raise ConfigurationError(
                f"write_overdrive must be positive, got {write_overdrive}"
            )
        self.capacitor_template = capacitor if capacitor is not None else SampleCapacitor()
        self.switching = switching
        self.write_overdrive = float(write_overdrive)

    @property
    def i_read1(self) -> float:
        """First-read current ``I_R2 / β`` [A]."""
        return self.i_read2 / self.beta

    def _switching_for(self, cell: Cell1T1J) -> SwitchingModel:
        if self.switching is not None:
            return self.switching
        return SwitchingModel(cell.mtj.params)

    def read(
        self,
        cell: Cell1T1J,
        rng: Optional[np.random.Generator] = None,
        power_failure_at: Optional[str] = None,
        hold_time: float = 10e-9,
    ) -> ReadResult:
        """Full destructive read: read, erase, read, compare, write back.

        ``power_failure_at`` injects a supply loss at one of
        ``("after_erase", "after_second_read", "after_compare")`` — the read
        aborts there and whatever state the cell holds is what survives.
        ``hold_time`` is how long C1 must hold ``V_BL1`` (droop applies).
        """
        if power_failure_at is not None and power_failure_at not in _FAILURE_PHASES:
            raise ConfigurationError(
                f"power_failure_at must be one of {_FAILURE_PHASES}, got {power_failure_at!r}"
            )
        expected = cell.stored_bit
        switching = self._switching_for(cell)
        write_current = self.write_overdrive * cell.mtj.params.i_c0

        # Phase 1: first read, sample V_BL1 onto C1.
        v_bl1 = cell.bitline_voltage(self.i_read1)
        if self.rtr_shift != 0.0:
            v_bl1 += self.i_read1 * self.rtr_shift
        cap1 = SampleCapacitor(
            self.capacitor_template.capacitance,
            self.capacitor_template.switch_resistance,
            self.capacitor_template.leakage_resistance,
        )
        cap1.sample(v_bl1, duration=10.0 * cap1.charge_time_constant)

        # Phase 2: erase — write "0" with a real pulse. The original data
        # now lives only on C1.
        switching.write_bit(cell, 0, write_current=write_current, rng=rng)
        erased_ok = cell.stored_bit == 0
        if power_failure_at == "after_erase":
            return ReadResult(
                bit=None,
                expected_bit=expected,
                margin=0.0,
                voltages={"v_bl1": cap1.stored_voltage},
                data_destroyed=(expected != cell.stored_bit),
                write_pulses=1,
                read_pulses=1,
            )

        # Phase 3: second read of the erased (low-resistance) cell, with C1
        # drooping through the hold.
        cap1.hold(hold_time)
        v_bl2 = cell.bitline_voltage(self.i_read2)
        if power_failure_at == "after_second_read":
            return ReadResult(
                bit=None,
                expected_bit=expected,
                margin=0.0,
                voltages={"v_bl1": cap1.stored_voltage, "v_bl2": v_bl2},
                data_destroyed=(expected != cell.stored_bit),
                write_pulses=1,
                read_pulses=2,
            )

        # Phase 4: compare. The stored V_BL1 above V_BL2 means high state.
        bit, metastable = self.sense_amp.compare_with_flag(cap1.stored_voltage, v_bl2, rng)
        signed_margin = (
            (cap1.stored_voltage - v_bl2) if expected == 1 else (v_bl2 - cap1.stored_voltage)
        )
        if power_failure_at == "after_compare":
            return ReadResult(
                bit=bit,
                expected_bit=expected,
                margin=signed_margin,
                voltages={"v_bl1": cap1.stored_voltage, "v_bl2": v_bl2},
                data_destroyed=(expected != cell.stored_bit),
                write_pulses=1,
                read_pulses=2,
                metastable=metastable,
            )

        # Phase 5: write back the sensed value (even if mis-sensed — that is
        # exactly how the real scheme propagates a read error into storage).
        write_back_bit = bit if bit is not None else 0
        switching.write_bit(cell, write_back_bit, write_current=write_current, rng=rng)
        data_destroyed = cell.stored_bit != expected
        return ReadResult(
            bit=bit,
            expected_bit=expected,
            margin=signed_margin,
            voltages={"v_bl1": cap1.stored_voltage, "v_bl2": v_bl2},
            data_destroyed=data_destroyed,
            write_pulses=2 if erased_ok or write_back_bit != 0 else 2,
            read_pulses=2,
            metastable=metastable,
        )

    def scaled_read_current(self, factor: float) -> "DestructiveSelfReference":
        """A copy reading at ``factor × i_read2`` (β and the write driver
        unchanged) — the retry controller's sense-current escalation."""
        if factor == 1.0:
            return self
        if factor <= 0.0:
            raise ConfigurationError(f"escalation factor must be positive, got {factor}")
        return DestructiveSelfReference(
            i_read2=self.i_read2 * factor,
            beta=self.beta,
            rtr_shift=self.rtr_shift,
            sense_amp=self.sense_amp,
            capacitor=self.capacitor_template,
            switching=self.switching,
            write_overdrive=self.write_overdrive,
        )

    @staticmethod
    def _erase_all(
        expected: np.ndarray, p_write: float, rng: Optional[np.random.Generator]
    ) -> np.ndarray:
        """Post-erase states when erase draws are the only random events
        (the early power-failure phases): one draw per stored "1", in
        ascending bit order — the stream the sequential scalar loop
        consumes."""
        after = expected.copy()
        targets = np.flatnonzero(expected == 1)
        if targets.size:
            if rng is None:
                switched = np.full(targets.size, p_write >= 0.5, dtype=bool)
            else:
                switched = rng.random(targets.size) < p_write
            after[targets[switched]] = 0
        return after

    def read_many(
        self,
        population: CellPopulation,
        states: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        power_failure_at: Optional[str] = None,
        hold_time: float = 10e-9,
    ) -> BatchReadResult:
        """Batched destructive read of a whole population; ``states`` is
        updated in place with whatever the read leaves behind.

        The voltage development is fully vectorized, but the random draws of
        the complete read interleave per bit with data dependence (the erase
        outcome selects that bit's ``V_BL2``, the compare outcome selects the
        write-back direction), so the erase/compare/write-back core runs as
        a compact per-bit loop over precomputed rails — preserving the exact
        scalar RNG stream while skipping all per-bit object construction.
        The early power-failure phases consume only erase draws and are
        drawn as one block.

        ``metastable`` reflects comparisons inside the resolution window;
        for reads aborted before the compare it is all-``False`` (no
        comparison ever happened), while ``bits`` is all ``-1``.
        """
        if power_failure_at is not None and power_failure_at not in _FAILURE_PHASES:
            raise ConfigurationError(
                f"power_failure_at must be one of {_FAILURE_PHASES}, got {power_failure_at!r}"
            )
        check_batch_inputs(population, states)
        expected = states.astype(np.uint8, copy=True)
        n = population.size
        switching = (
            self.switching if self.switching is not None else SwitchingModel(population.nominal)
        )
        write_current = self.write_overdrive * population.nominal.i_c0
        p_write = float(
            switching.switch_probability(write_current, switching.params.pulse_width_write)
        )

        # Phase 1: first read, sample V_BL1 onto C1 (array-valued capacitor).
        v_bl1 = population.bitline_voltage(self.i_read1, expected)
        if self.rtr_shift != 0.0:
            v_bl1 = v_bl1 + self.i_read1 * self.rtr_shift
        cap1 = self.capacitor_template.fresh()
        cap1.sample(v_bl1, duration=10.0 * cap1.charge_time_constant)

        no_compare = dict(
            bits=np.full(n, -1, dtype=np.int8),
            margins=np.zeros(n),
            metastable=np.zeros(n, dtype=bool),
        )
        if power_failure_at == "after_erase":
            after_erase = self._erase_all(expected, p_write, rng)
            states[:] = after_erase
            return BatchReadResult(
                scheme=self.name,
                expected_bits=expected,
                voltages={"v_bl1": cap1.stored_voltage},
                data_destroyed=after_erase != expected,
                write_pulses=1,
                read_pulses=1,
                **no_compare,
            )

        # Phase 3 rails: the erased cell re-read at I_R2 (both state
        # hypotheses precomputed; the per-bit erase outcome selects one),
        # with C1 drooping through the hold.
        v_held = cap1.hold(hold_time)
        v2_low = population.bitline_voltage(self.i_read2, np.zeros(n, dtype=np.uint8))
        v2_high = population.bitline_voltage(self.i_read2, np.ones(n, dtype=np.uint8))

        if power_failure_at == "after_second_read":
            after_erase = self._erase_all(expected, p_write, rng)
            v_bl2 = np.where(after_erase == 1, v2_high, v2_low)
            states[:] = after_erase
            return BatchReadResult(
                scheme=self.name,
                expected_bits=expected,
                voltages={"v_bl1": v_held, "v_bl2": v_bl2},
                data_destroyed=after_erase != expected,
                write_pulses=1,
                read_pulses=2,
                **no_compare,
            )

        # Phases 2+4(+5): erase, compare, write back.  Draw-for-draw the
        # scalar order: per bit — erase draw iff a "1" is stored, compare
        # draw iff inside the resolution window, write-back draw iff the
        # post-erase state differs from the sensed value.
        offset = self.sense_amp.offset
        resolution = self.sense_amp.resolution
        write_back = power_failure_at is None
        det_switch = p_write >= 0.5
        rand = rng.random if rng is not None else None
        bits_l = []
        vbl2_l = []
        meta_l = []
        final_l = []
        for e, vh, v2lo, v2hi in zip(
            expected.tolist(), np.asarray(v_held).tolist(), v2_low.tolist(), v2_high.tolist()
        ):
            state = e
            if e == 1 and ((rand() < p_write) if rand is not None else det_switch):
                state = 0
            v2 = v2hi if state == 1 else v2lo
            diff = vh - v2 + offset
            window = abs(diff) < resolution
            if not window:
                b = 1 if diff > 0.0 else 0
            elif rand is None:
                b = -1
            else:
                b = 1 if rand() < 0.5 else 0
            if write_back:
                wb = b if b >= 0 else 0
                if state != wb and (
                    (rand() < p_write) if rand is not None else det_switch
                ):
                    state = wb
            bits_l.append(b)
            vbl2_l.append(v2)
            meta_l.append(window)
            final_l.append(state)

        v_bl2 = np.array(vbl2_l)
        final = np.array(final_l, dtype=np.uint8)
        margins = np.where(expected == 1, v_held - v_bl2, v_bl2 - v_held)
        states[:] = final
        return BatchReadResult(
            scheme=self.name,
            bits=np.array(bits_l, dtype=np.int8),
            expected_bits=expected,
            margins=margins,
            voltages={"v_bl1": v_held, "v_bl2": v_bl2},
            metastable=np.array(meta_l, dtype=bool),
            data_destroyed=final != expected,
            write_pulses=2 if write_back else 1,
            read_pulses=2,
        )

    def sense_margins(self, cell: Cell1T1J) -> MarginPair:
        """Analytic margins (paper Eq. 3's inequalities as distances)."""
        return destructive_margins(cell, self.i_read2, self.beta, self.rtr_shift)
