"""Read-retry controller: re-sense bits that failed to resolve.

A metastable sense-amplifier decision is observable in hardware (the latch
flags late resolution), so a memory controller can simply try again — wait
a backoff, optionally escalate the sense current for more differential
swing, optionally majority-vote over the attempts.  This module implements
that controller over both read paths:

* :func:`read_with_retry` — the scalar path, one :class:`Cell1T1J`;
* :func:`read_many_with_retry` — the vectorized path over a whole
  :class:`CellPopulation`, re-reading only the still-unresolved subset
  each round.

RNG contract (round-major): attempt 1 consumes draws exactly as one
``read_many`` over the full population; each further attempt consumes
draws as one ``read_many`` over the still-active subset in ascending bit
order.  :func:`retry_batch_from_scalar_reads` is that contract spelled out
as a loop of scalar ``scheme.read`` calls — the reference implementation
the vectorized controller must match bit-for-bit (and the baseline the
hypothesis equivalence tests compare against).

Retries are *not* free: every attempt's current pulses accumulate into the
result's ``read_pulses``/``write_pulses`` and the policy's backoff
accumulates in simulated nanoseconds, so latency/energy accounting (see
:func:`repro.timing.latency.retry_read_latency`) charges what the cell
actually endured.

Usage — re-read a whole population until its metastable bits resolve::

    import numpy as np
    from repro.core import NondestructiveSelfReference, RetryPolicy
    from repro.core.retry import read_many_with_retry

    policy = RetryPolicy(max_attempts=3, backoff_ns=5.0,
                         current_escalation=0.1)   # +10% I_read per round
    scheme = NondestructiveSelfReference(beta=2.136)
    result = read_many_with_retry(
        scheme, population, states, policy, rng=np.random.default_rng(7)
    )
    result.retried_count       # bits that needed a second look
    result.recovered_mask      # retries that produced a clean decision
    result.exhausted_mask      # still unresolved -> escalate to ECC/scrub

With :mod:`repro.obs` enabled, every retry round also lands in the
``retry.*`` counters and emits ``read_retried`` / ``read_escalated``
trace events (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import check_batch_inputs, materialize_cell
from repro.core.cell import Cell1T1J
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.registry import ATTEMPTS_EDGES, BACKOFF_NS_EDGES
from repro.obs.trace import READ_ESCALATED, READ_RETRIED

__all__ = [
    "RetryPolicy",
    "BatchRetryResult",
    "read_with_retry",
    "read_many_with_retry",
    "retry_batch_from_scalar_reads",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How a controller re-reads bits that failed to resolve.

    Attributes
    ----------
    max_attempts:
        Total attempts per bit including the first read (>= 1).
    backoff_ns:
        Simulated wait before the second attempt [ns]; each further
        attempt multiplies it by ``backoff_factor`` (exponential backoff,
        letting transient bit-line disturbances die out).
    backoff_factor:
        Backoff growth per attempt (>= 1).
    current_escalation:
        Fractional read-current increase per extra attempt: attempt ``k``
        reads at ``(1 + current_escalation · (k-1)) × I_read``.  More
        current means more differential swing — at the price of
        read-disturb headroom, which is why it is opt-in.
    majority_vote:
        When True, the final bit is the majority of all resolved attempt
        decisions (ties fall back to the last attempt) instead of simply
        the last attempt — a re-sense filter against single metastable
        coin flips.
    """

    max_attempts: int = 3
    backoff_ns: float = 5.0
    backoff_factor: float = 2.0
    current_escalation: float = 0.0
    majority_vote: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ns < 0.0:
            raise ConfigurationError("backoff_ns must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.current_escalation < 0.0:
            raise ConfigurationError("current_escalation must be non-negative")

    def escalation_factor(self, attempt: int) -> float:
        """Read-current multiple of attempt ``attempt`` (1-indexed)."""
        return 1.0 + self.current_escalation * (attempt - 1)

    def backoff_before(self, attempt: int) -> float:
        """Simulated wait before attempt ``attempt`` [ns] (0 for the first)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_ns * self.backoff_factor ** (attempt - 2)

    def total_backoff(self, attempts: int) -> float:
        """Total backoff accrued by ``attempts`` attempts [ns]."""
        return sum(self.backoff_before(k) for k in range(2, attempts + 1))


def _meter_retry_round(
    scheme_name: str, policy: RetryPolicy, attempt: int, bits: int
) -> None:
    """Record one retry round (attempt >= 2) when observability is on."""
    if not _obs.active():
        return
    registry = _obs.get_registry()
    registry.inc("retry.rounds", scheme=scheme_name)
    registry.inc("retry.bits_retried", bits, scheme=scheme_name)
    _obs.trace(READ_RETRIED, scheme=scheme_name, attempt=attempt, bits=int(bits))
    factor = policy.escalation_factor(attempt)
    if factor != 1.0:
        registry.inc("retry.escalations", scheme=scheme_name)
        _obs.trace(
            READ_ESCALATED, scheme=scheme_name, attempt=attempt, factor=factor
        )


def _meter_retry_result(result: "BatchRetryResult") -> "BatchRetryResult":
    """Fold one finished retried batch into the registry (no-op when off)."""
    if not _obs.active():
        return result
    registry = _obs.get_registry()
    scheme_name = result.scheme
    recovered = int(np.count_nonzero(result.recovered_mask))
    exhausted = int(np.count_nonzero(result.exhausted_mask))
    if recovered:
        registry.inc("retry.recovered_bits", recovered, scheme=scheme_name)
    if exhausted:
        registry.inc("retry.exhausted_bits", exhausted, scheme=scheme_name)
    registry.observe_many(
        "retry.attempts", result.attempts, edges=ATTEMPTS_EDGES, scheme=scheme_name
    )
    retried = result.retried_mask
    if retried.any():
        registry.observe_many(
            "retry.backoff_ns",
            result.backoff_ns[retried],
            edges=BACKOFF_NS_EDGES,
            scheme=scheme_name,
        )
    return result


def _needs_retry(bit: Optional[int], metastable: bool) -> bool:
    """A read needs a retry when it produced no decision or a metastable
    one (power-failure aborts also land here: ``bit is None``)."""
    return metastable or bit is None


def _majority(votes, fallback: Optional[int]) -> Optional[int]:
    """Majority of resolved votes; ties (or no votes) fall back."""
    resolved = [b for b in votes if b is not None]
    if not resolved:
        return fallback
    ones = sum(resolved)
    if 2 * ones > len(resolved):
        return 1
    if 2 * ones < len(resolved):
        return 0
    return fallback


def _kwargs_for_subset(kwargs: Dict, idx: np.ndarray, size: int) -> Dict:
    """Per-bit array kwargs (e.g. ``v_ref_error``) restricted to a subset."""
    out = {}
    for name, value in kwargs.items():
        if isinstance(value, np.ndarray) and value.shape == (size,):
            out[name] = value[idx]
        else:
            out[name] = value
    return out


def _kwargs_for_bit(kwargs: Dict, index: int, size: int) -> Dict:
    """Per-bit array kwargs reduced to one bit's scalar (the scalar path)."""
    out = {}
    for name, value in kwargs.items():
        if isinstance(value, np.ndarray) and value.shape == (size,):
            out[name] = float(value[index])
        else:
            out[name] = value
    return out


def read_with_retry(
    scheme: SensingScheme,
    cell: Cell1T1J,
    policy: RetryPolicy,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> ReadResult:
    """Read one cell, retrying per ``policy`` while the latch stays
    metastable (or the read aborted without a decision).

    Returns the final attempt's :class:`ReadResult` with the retry
    accounting folded in: ``read_pulses``/``write_pulses`` accumulate over
    **all** attempts, ``attempts`` counts them, ``expected_bit`` stays the
    ground truth *before the first attempt*, and ``data_destroyed``
    reflects the cell's state after the last (a destructive retry can
    restore a bit an earlier attempt destroyed, or vice versa).
    """
    original = cell.stored_bit
    results = []
    attempt = 0
    while True:
        attempt += 1
        if attempt > 1:
            _meter_retry_round(scheme.name, policy, attempt, bits=1)
        escalated = scheme.scaled_read_current(policy.escalation_factor(attempt))
        results.append(escalated.read(cell, rng, **kwargs))
        last = results[-1]
        if not _needs_retry(last.bit, last.metastable):
            break
        if attempt >= policy.max_attempts:
            break
    final = results[-1]
    bit = final.bit
    if policy.majority_vote and len(results) > 1:
        bit = _majority([r.bit for r in results], final.bit)
    merged = dataclasses.replace(
        final,
        bit=bit,
        expected_bit=original,
        data_destroyed=cell.stored_bit != original,
        read_pulses=sum(r.read_pulses for r in results),
        write_pulses=sum(r.write_pulses for r in results),
        attempts=len(results),
    )
    if _obs.active():
        registry = _obs.get_registry()
        if len(results) > 1 and merged.resolved:
            registry.inc("retry.recovered_bits", scheme=scheme.name)
        if merged.metastable or merged.bit is None:
            registry.inc("retry.exhausted_bits", scheme=scheme.name)
        registry.observe(
            "retry.attempts", len(results), edges=ATTEMPTS_EDGES, scheme=scheme.name
        )
        if len(results) > 1:
            registry.observe(
                "retry.backoff_ns",
                policy.total_backoff(len(results)),
                edges=BACKOFF_NS_EDGES,
                scheme=scheme.name,
            )
    return merged


@dataclasses.dataclass(frozen=True)
class BatchRetryResult:
    """Outcome of one retried batch read over a cell population.

    The per-bit view mirrors :class:`~repro.core.batch.BatchReadResult`
    with each bit taken from its **last** attempt; ``expected_bits`` is the
    ground truth before the first attempt and ``data_destroyed`` compares
    the final stored states against it.  ``attempts``, ``read_pulses``,
    ``write_pulses`` and ``backoff_ns`` are per-bit accounting arrays.
    """

    scheme: str
    policy: RetryPolicy
    bits: np.ndarray
    expected_bits: np.ndarray
    margins: np.ndarray
    voltages: Dict[str, np.ndarray]
    metastable: np.ndarray
    data_destroyed: np.ndarray
    attempts: np.ndarray
    read_pulses: np.ndarray
    write_pulses: np.ndarray
    backoff_ns: np.ndarray
    first_attempt_metastable: np.ndarray

    # ------------------------------------------------------------------
    # Aggregate views (the BatchReadResult vocabulary)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of bits in the batch."""
        return int(self.bits.size)

    @property
    def unresolved_mask(self) -> np.ndarray:
        """Bits left without a decision after every attempt."""
        return self.bits < 0

    @property
    def correct_mask(self) -> np.ndarray:
        """Bits whose final sensed value matches the original data."""
        return (self.bits >= 0) & (self.bits == self.expected_bits)

    @property
    def error_count(self) -> int:
        """Reads that returned the wrong (or no) value after retries."""
        return int(np.count_nonzero(~self.correct_mask))

    @property
    def error_fraction(self) -> float:
        """``error_count / size`` after the retry ladder."""
        return self.error_count / self.size if self.size else 0.0

    def bit_values(self) -> np.ndarray:
        """Final bits with unresolved comparisons mapped to 0."""
        return np.where(self.bits < 0, 0, self.bits).astype(np.uint8)

    # ------------------------------------------------------------------
    # Retry-specific views
    # ------------------------------------------------------------------
    @property
    def retried_mask(self) -> np.ndarray:
        """Bits that needed more than one attempt."""
        return self.attempts > 1

    @property
    def retried_count(self) -> int:
        """How many bits needed more than one attempt."""
        return int(np.count_nonzero(self.retried_mask))

    @property
    def recovered_mask(self) -> np.ndarray:
        """Bits that needed a retry and ended with a deterministic
        decision — the retries that *worked*."""
        return self.retried_mask & (self.bits >= 0) & ~self.metastable

    @property
    def exhausted_mask(self) -> np.ndarray:
        """Bits still metastable (or undecided) after the final attempt —
        candidates for the next recovery tier (ECC/scrub/repair)."""
        return self.metastable | (self.bits < 0)

    @property
    def total_read_pulses(self) -> int:
        """Read pulses summed over every bit and attempt."""
        return int(self.read_pulses.sum())

    @property
    def total_write_pulses(self) -> int:
        """Write pulses summed over every bit and attempt."""
        return int(self.write_pulses.sum())

    @property
    def max_backoff_ns(self) -> float:
        """Worst per-bit backoff — the batch's added latency [ns] (bits
        retry in parallel, so the slowest bit sets the word latency)."""
        return float(self.backoff_ns.max()) if self.size else 0.0

    def result(self, index: int) -> ReadResult:
        """Scalar :class:`~repro.core.base.ReadResult` view of one bit,
        retry accounting included."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        bit = int(self.bits[index])
        return ReadResult(
            bit=None if bit < 0 else bit,
            expected_bit=int(self.expected_bits[index]),
            margin=float(self.margins[index]),
            voltages={
                name: float(values[index]) for name, values in self.voltages.items()
            },
            data_destroyed=bool(self.data_destroyed[index]),
            write_pulses=int(self.write_pulses[index]),
            read_pulses=int(self.read_pulses[index]),
            metastable=bool(self.metastable[index]),
            attempts=int(self.attempts[index]),
        )


class _RetryAccumulator:
    """Shared merge logic of the vectorized and reference controllers."""

    def __init__(self, scheme_name: str, policy: RetryPolicy, size: int, original: np.ndarray):
        self.scheme_name = scheme_name
        self.policy = policy
        self.size = size
        self.original = original
        self.bits = np.full(size, -1, dtype=np.int8)
        self.margins = np.zeros(size)
        self.voltages: Dict[str, np.ndarray] = {}
        self.metastable = np.zeros(size, dtype=bool)
        self.attempts = np.zeros(size, dtype=np.int64)
        self.read_pulses = np.zeros(size, dtype=np.int64)
        self.write_pulses = np.zeros(size, dtype=np.int64)
        self.backoff_ns = np.zeros(size)
        self.first_metastable = np.zeros(size, dtype=bool)
        self.vote_ones = np.zeros(size, dtype=np.int64)
        self.vote_total = np.zeros(size, dtype=np.int64)

    def merge(self, idx: np.ndarray, attempt: int, batch) -> None:
        """Fold one attempt's sub-batch (over the bits in ``idx``) in."""
        self.bits[idx] = batch.bits
        self.margins[idx] = batch.margins
        for name, values in batch.voltages.items():
            if name not in self.voltages:
                self.voltages[name] = np.zeros(self.size)
            self.voltages[name][idx] = np.broadcast_to(values, (idx.size,))
        self.metastable[idx] = batch.metastable
        self.attempts[idx] += 1
        self.read_pulses[idx] += batch.read_pulses
        self.write_pulses[idx] += batch.write_pulses
        self.backoff_ns[idx] += self.policy.backoff_before(attempt)
        if attempt == 1:
            self.first_metastable[idx] = batch.metastable
        resolved = batch.bits >= 0
        self.vote_total[idx] += resolved
        self.vote_ones[idx] += resolved & (batch.bits == 1)

    def finalize(self, states: np.ndarray) -> BatchRetryResult:
        bits = self.bits
        if self.policy.majority_vote:
            voted = np.where(
                2 * self.vote_ones > self.vote_total,
                np.int8(1),
                np.where(2 * self.vote_ones < self.vote_total, np.int8(0), bits),
            ).astype(np.int8)
            # Only multi-attempt bits are re-voted; ties keep the last bit.
            bits = np.where(self.attempts > 1, voted, bits)
        return BatchRetryResult(
            scheme=self.scheme_name,
            policy=self.policy,
            bits=bits,
            expected_bits=self.original,
            margins=self.margins,
            voltages=self.voltages,
            metastable=self.metastable,
            data_destroyed=states != self.original,
            attempts=self.attempts,
            read_pulses=self.read_pulses,
            write_pulses=self.write_pulses,
            backoff_ns=self.backoff_ns,
            first_attempt_metastable=self.first_metastable,
        )


def read_many_with_retry(
    scheme: SensingScheme,
    population: CellPopulation,
    states: np.ndarray,
    policy: RetryPolicy,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> BatchRetryResult:
    """Vectorized retried read: one ``read_many`` pass per attempt round,
    each round restricted to the bits still unresolved.

    Bit-for-bit equivalent (same draws, same order) to
    :func:`retry_batch_from_scalar_reads` under the same RNG seed —
    attempt 1 is exactly one full-population ``read_many``; round ``k``
    re-reads the active subset in ascending bit order.  ``states`` is
    updated in place after every attempt.
    """
    check_batch_inputs(population, states)
    n = population.size
    original = states.astype(np.uint8, copy=True)
    acc = _RetryAccumulator(scheme.name, policy, n, original)

    idx = np.arange(n)
    active_pop = population
    attempt = 0
    while idx.size:
        attempt += 1
        if attempt > 1:
            _meter_retry_round(scheme.name, policy, attempt, bits=int(idx.size))
        escalated = scheme.scaled_read_current(policy.escalation_factor(attempt))
        sub_states = states[idx].copy()
        batch = escalated.read_many(
            active_pop, sub_states, rng=rng, **_kwargs_for_subset(kwargs, idx, n)
        )
        states[idx] = sub_states
        acc.merge(idx, attempt, batch)
        if attempt >= policy.max_attempts:
            break
        still = batch.metastable | (batch.bits < 0)
        if not still.any():
            break
        idx = idx[still]
        active_pop = population.subset(idx)
    return _meter_retry_result(acc.finalize(states))


def retry_batch_from_scalar_reads(
    scheme: SensingScheme,
    population: CellPopulation,
    states: np.ndarray,
    policy: RetryPolicy,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> BatchRetryResult:
    """Reference retried batch read: the round-major loop of scalar
    ``scheme.read`` calls that defines the controller's RNG stream.

    Round 1 reads every bit in ascending order; round ``k`` re-reads the
    still-active bits in ascending order with the policy's escalated
    current.  :func:`read_many_with_retry` must reproduce this
    bit-for-bit — it is the retry analogue of
    :func:`repro.core.batch.batch_from_scalar_reads`.
    """
    check_batch_inputs(population, states)
    n = population.size
    original = states.astype(np.uint8, copy=True)
    acc = _RetryAccumulator(scheme.name, policy, n, original)

    idx = np.arange(n)
    attempt = 0
    while idx.size:
        attempt += 1
        if attempt > 1:
            _meter_retry_round(scheme.name, policy, attempt, bits=int(idx.size))
        escalated = scheme.scaled_read_current(policy.escalation_factor(attempt))
        results = []
        for index in idx:
            cell = materialize_cell(population, int(index), int(states[index]))
            results.append(
                escalated.read(cell, rng, **_kwargs_for_bit(kwargs, int(index), n))
            )
            states[index] = cell.stored_bit
        sub = _ScalarRound(results)
        acc.merge(idx, attempt, sub)
        if attempt >= policy.max_attempts:
            break
        still = sub.metastable | (sub.bits < 0)
        if not still.any():
            break
        idx = idx[still]
    return _meter_retry_result(acc.finalize(states))


class _ScalarRound:
    """One reference round's scalar results, shaped like a sub-batch."""

    def __init__(self, results):
        self.bits = np.array(
            [-1 if r.bit is None else r.bit for r in results], dtype=np.int8
        )
        self.margins = np.array([r.margin for r in results])
        names = list(results[0].voltages) if results else []
        self.voltages = {
            name: np.array([r.voltages.get(name, np.nan) for r in results])
            for name in names
        }
        self.metastable = np.array([r.metastable for r in results], dtype=bool)
        self.read_pulses = results[0].read_pulses if results else 1
        self.write_pulses = results[0].write_pulses if results else 0
