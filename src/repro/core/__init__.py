"""The paper's contribution: STT-RAM sensing schemes and their analysis.

Three schemes are implemented behind a common interface:

* :class:`~repro.core.conventional.ConventionalSensing` — one read compared
  against a shared external reference voltage (paper Eqs. 1–2); fails for
  tail bits under large MTJ variation.
* :class:`~repro.core.destructive.DestructiveSelfReference` — prior-art
  self-reference (paper Fig. 3, Eqs. 3–5): read, erase to "0", read again at
  a larger current, compare, write back.
* :class:`~repro.core.nondestructive.NondestructiveSelfReference` — the
  paper's proposal (Fig. 5, Eqs. 6–10): two reads at different currents and
  a voltage divider; no write pulse ever touches the cell.

Plus the read-current-ratio optimizers (Eqs. 5/10) and the robustness
analysis (Eqs. 11–20) behind the paper's Figs. 6–8 and Table II.
"""

from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import BatchReadResult, batch_from_scalar_reads, materialize_cell
from repro.core.cell import Cell1T1J
from repro.core.conventional import ConventionalSensing, shared_reference_voltage
from repro.core.destructive import DestructiveSelfReference
from repro.core.margins import (
    MarginPair,
    conventional_margins,
    destructive_margins,
    nondestructive_margins,
    population_conventional_margins,
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.core.nondestructive import NondestructiveSelfReference
from repro.core.retry import (
    BatchRetryResult,
    RetryPolicy,
    read_many_with_retry,
    read_with_retry,
    retry_batch_from_scalar_reads,
)
from repro.core.optimize import (
    BetaOptimum,
    closed_form_beta_destructive,
    closed_form_beta_nondestructive,
    optimize_beta_destructive,
    optimize_beta_nondestructive,
)
from repro.core.reference import (
    ReferenceColumn,
    build_reference_column,
    sample_reference_errors,
)
from repro.core.trim import TrimResult, beta_compensating_alpha, trim_population_beta
from repro.core.robustness import (
    RobustnessSummary,
    alpha_deviation_window,
    robustness_summary,
    rtr_shift_window_destructive,
    rtr_shift_window_nondestructive,
    valid_beta_window_destructive,
    valid_beta_window_nondestructive,
)

__all__ = [
    "Cell1T1J",
    "SensingScheme",
    "ReadResult",
    "BatchReadResult",
    "batch_from_scalar_reads",
    "materialize_cell",
    "RetryPolicy",
    "BatchRetryResult",
    "read_with_retry",
    "read_many_with_retry",
    "retry_batch_from_scalar_reads",
    "ConventionalSensing",
    "shared_reference_voltage",
    "DestructiveSelfReference",
    "NondestructiveSelfReference",
    "MarginPair",
    "conventional_margins",
    "destructive_margins",
    "nondestructive_margins",
    "population_conventional_margins",
    "population_destructive_margins",
    "population_nondestructive_margins",
    "BetaOptimum",
    "optimize_beta_destructive",
    "optimize_beta_nondestructive",
    "closed_form_beta_destructive",
    "closed_form_beta_nondestructive",
    "ReferenceColumn",
    "build_reference_column",
    "sample_reference_errors",
    "TrimResult",
    "beta_compensating_alpha",
    "trim_population_beta",
    "RobustnessSummary",
    "robustness_summary",
    "valid_beta_window_destructive",
    "valid_beta_window_nondestructive",
    "rtr_shift_window_destructive",
    "rtr_shift_window_nondestructive",
    "alpha_deviation_window",
]
