"""The 1T1J STT-RAM cell: one MTJ in series with one NMOS access transistor
(paper Fig. 1c).

During a read, a current ``I_R`` is forced into the bit line and the cell
develops ``V_BL = I_R (R_MTJ(I_R) + R_TR(I_R))`` (paper Eq. 1).  The cell
object owns the stored state and produces those voltages; optional bit-line
leakage (unselected cells) can be folded in.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.circuit.bitline import BitlineModel
from repro.device.mtj import MTJDevice, MTJState
from repro.device.transistor import AccessTransistor, FixedResistanceTransistor

__all__ = ["Cell1T1J"]


@dataclasses.dataclass
class Cell1T1J:
    """One bit cell.

    Attributes
    ----------
    mtj:
        The storage junction (owns the magnetization state).
    transistor:
        Access device contributing series resistance when the word line is
        asserted.
    bitline:
        Optional bit-line model; when present, unselected-cell leakage
        slightly reduces the developed bit-line voltage.
    """

    mtj: MTJDevice
    transistor: AccessTransistor = dataclasses.field(
        default_factory=lambda: FixedResistanceTransistor(917.0)
    )
    bitline: Optional[BitlineModel] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> MTJState:
        """Stored magnetization state."""
        return self.mtj.state

    @state.setter
    def state(self, value: MTJState) -> None:
        self.mtj.state = value

    @property
    def stored_bit(self) -> int:
        """Ground-truth stored bit."""
        return self.mtj.state.bit

    def write(self, bit: int) -> None:
        """Ideal write (used by tests and array initialization; the
        destructive scheme's erase/write-back go through the switching
        model instead)."""
        self.mtj.write(bit)

    # ------------------------------------------------------------------
    # Electrical characteristics
    # ------------------------------------------------------------------
    def series_resistance(self, current: float, state: Optional[MTJState] = None) -> float:
        """``R_MTJ(I) + R_TR(I)`` [Ω] for the given (or stored) state."""
        r_mtj = self.mtj.resistance(current, state)
        r_tr = self.transistor.resistance(current)
        return float(r_mtj) + float(r_tr)

    def effective_resistance(self, current: float, state: Optional[MTJState] = None) -> float:
        """Series resistance with bit-line leakage folded in (parallel
        combination with the unselected cells' leakage path)."""
        r_cell = self.series_resistance(current, state)
        if self.bitline is None:
            return r_cell
        g_leak = self.bitline.leakage_conductance
        return r_cell / (1.0 + r_cell * g_leak)

    def bitline_voltage(self, current: float, state: Optional[MTJState] = None) -> float:
        """Bit-line voltage ``V_BL`` developed by a read current [V]."""
        return current * self.effective_resistance(current, state)

    def copy(self) -> "Cell1T1J":
        """Independent copy (own MTJ state)."""
        return Cell1T1J(self.mtj.copy(), self.transistor, self.bitline)

    def __repr__(self) -> str:
        return f"Cell1T1J(bit={self.stored_bit}, mtj={self.mtj!r})"
