"""Reference generation for conventional sensing.

The conventional scheme's shared ``V_REF`` has to come from somewhere.  The
standard construction (and what STT-RAM prototypes of the era used) is a
**reference column**: pairs of reference cells — one written parallel, one
anti-parallel — whose averaged bit-line voltage is the midpoint reference:

    V_REF = I_R (R_L,ref + R_H,ref + 2 R_T,ref) / 2

The reference cells are fabricated by the same process as the data cells,
so the reference inherits MTJ variation, attenuated by averaging over the
``pairs`` used.  This module generates per-column references from a sampled
:class:`~repro.device.variation.CellPopulation` — the *physical origin* of
the ``sigma_vref`` parameter the test-chip model uses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError

__all__ = ["ReferenceColumn", "sample_reference_errors"]


@dataclasses.dataclass(frozen=True)
class ReferenceColumn:
    """One column's midpoint reference built from reference-cell pairs.

    Attributes
    ----------
    v_ref:
        The generated reference [V].
    v_ref_ideal:
        The reference a variation-free pair would generate [V].
    pairs:
        Number of averaged reference pairs.
    """

    v_ref: float
    v_ref_ideal: float
    pairs: int

    @property
    def error(self) -> float:
        """Reference error relative to the ideal midpoint [V]."""
        return self.v_ref - self.v_ref_ideal


def _midpoint_reference(
    population: CellPopulation, indices: np.ndarray, i_read: float
) -> float:
    """Average midpoint voltage over reference pairs drawn at ``indices``.

    Each pair uses one cell's parallel branch and the next cell's
    anti-parallel branch (distinct physical devices, as on silicon).
    """
    low = population.resistance_low(i_read)[indices[0::2]]
    high = population.resistance_high(i_read)[indices[1::2]]
    r_t = population.r_tr[indices]
    v_pairs = 0.5 * i_read * (low + high) + i_read * 0.5 * (
        r_t[0::2] + r_t[1::2]
    )
    return float(np.mean(v_pairs))


def build_reference_column(
    population: CellPopulation,
    pairs: int,
    i_read: float,
    rng: np.random.Generator,
    v_ref_ideal: Optional[float] = None,
) -> ReferenceColumn:
    """Draw ``pairs`` reference pairs from the population and build the
    column reference."""
    if pairs < 1:
        raise ConfigurationError("need at least one reference pair")
    if population.size < 2 * pairs:
        raise ConfigurationError(
            f"population of {population.size} too small for {pairs} pairs"
        )
    indices = rng.choice(population.size, size=2 * pairs, replace=False)
    v_ref = _midpoint_reference(population, indices, i_read)
    if v_ref_ideal is None:
        nominal = population.nominal
        ratio = i_read / nominal.i_read_max
        r_low = nominal.r_low - nominal.dr_low_max * population.rolloff_low.fraction(ratio)
        r_high = nominal.r_high - nominal.dr_high_max * population.rolloff_high.fraction(ratio)
        r_t = float(np.median(population.r_tr))
        v_ref_ideal = 0.5 * i_read * (r_low + r_high + 2.0 * r_t)
    return ReferenceColumn(v_ref=v_ref, v_ref_ideal=v_ref_ideal, pairs=pairs)


def sample_reference_errors(
    variation: VariationModel,
    pairs: int,
    columns: int,
    i_read: float = 200e-6,
    rng: Optional[np.random.Generator] = None,
    population: Optional[CellPopulation] = None,
) -> np.ndarray:
    """Monte-Carlo the per-column reference error [V].

    Returns one error sample per column.  Use the standard deviation of the
    result to ground the test-chip model's ``sigma_vref`` in the
    reference-cell construction: fewer averaged pairs → larger error.
    """
    if columns < 1:
        raise ConfigurationError("columns must be >= 1")
    if rng is None:
        rng = np.random.default_rng()
    if population is None:
        population = CellPopulation.sample(
            max(4 * pairs * columns, 256), variation, rng=rng
        )
    errors = np.empty(columns)
    for column in range(columns):
        reference = build_reference_column(population, pairs, i_read, rng)
        errors[column] = reference.error
    return errors
