"""Robustness analysis of the self-reference schemes (paper §IV,
Eqs. 11–20, Figs. 6–8, Table II).

Three variation sources can erase the sense margin:

* **β variation** — read-driver mismatch changes ``I_R2 / I_R1``; the valid
  window is where both margins stay positive (Eqs. 12/15, Fig. 6);
* **ΔR_TR** — the access transistor's resistance shifts between the two
  reads (different drain-source voltages); Eqs. 18/19, Fig. 7;
* **Δα** — the divider ratio deviates from design (nondestructive scheme
  only); Eq. 20, Fig. 8.

Margins are *exactly linear* in ΔR_TR and Δα, so those windows are computed
in closed form from the design-point margins; the β windows come from Brent
root-finding on the exact margin expressions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

from scipy.optimize import brentq

from repro.core.cell import Cell1T1J
from repro.core.margins import destructive_margins, nondestructive_margins
from repro.device.mtj import MTJState
from repro.errors import ConfigurationError, ConvergenceError

__all__ = [
    "valid_beta_window_destructive",
    "valid_beta_window_nondestructive",
    "rtr_shift_window_destructive",
    "rtr_shift_window_nondestructive",
    "alpha_deviation_window",
    "RobustnessSummary",
    "robustness_summary",
]

_BETA_SCAN_UPPER = 50.0


def _zero_crossing(
    func: Callable[[float], float], lower: float, upper: float, samples: int = 512
) -> Optional[float]:
    """First sign change of ``func`` on ``(lower, upper)``, or ``None``."""
    previous_x = lower
    previous_value = func(lower)
    for index in range(1, samples + 1):
        x = lower + (upper - lower) * index / samples
        value = func(x)
        if previous_value == 0.0:
            return previous_x
        if previous_value * value < 0.0:
            return float(brentq(func, previous_x, x, xtol=1e-12))
        previous_x, previous_value = x, value
    return None


def valid_beta_window_destructive(
    cell: Cell1T1J, i_read2: float = 200e-6
) -> Tuple[float, float]:
    """β window with both margins positive (paper Eq. 12).

    The lower edge is where ``SM0`` vanishes (β → 1: the two reads see the
    same low-state voltage); the upper edge is where ``SM1`` vanishes (I_R1
    too small to lift the high state above the reference).
    """
    def sm0(beta: float) -> float:
        return destructive_margins(cell, i_read2, beta).sm0

    def sm1(beta: float) -> float:
        return destructive_margins(cell, i_read2, beta).sm1

    epsilon = 1e-9
    lower = _zero_crossing(sm0, 1.0 + epsilon, _BETA_SCAN_UPPER)
    if lower is None:
        # SM0 is positive for every beta > 1; the window opens at 1.
        lower = 1.0
    upper = _zero_crossing(sm1, max(lower + epsilon, 1.0 + epsilon), _BETA_SCAN_UPPER)
    if upper is None:
        raise ConvergenceError("SM1 never vanishes; device parameters unphysical")
    return float(lower), float(upper)


def valid_beta_window_nondestructive(
    cell: Cell1T1J, i_read2: float = 200e-6, alpha: float = 0.5
) -> Tuple[float, float]:
    """β window with both margins positive (paper Eq. 15).

    Because the low state is nearly flat, ``SM0 > 0`` needs ``α β`` just
    above 1 (β ≳ 2 at α = 0.5); ``SM1 > 0`` caps β where the first-read
    high-state voltage no longer clears the divided second-read one.
    """
    def sm0(beta: float) -> float:
        return nondestructive_margins(cell, i_read2, beta, alpha=alpha).sm0

    def sm1(beta: float) -> float:
        return nondestructive_margins(cell, i_read2, beta, alpha=alpha).sm1

    epsilon = 1e-9
    lower = _zero_crossing(sm0, 1.0 + epsilon, _BETA_SCAN_UPPER)
    if lower is None:
        raise ConvergenceError("SM0 never becomes positive; check alpha")
    upper = _zero_crossing(sm1, lower + epsilon, _BETA_SCAN_UPPER)
    if upper is None:
        raise ConvergenceError("SM1 never vanishes; device parameters unphysical")
    return float(lower), float(upper)


def rtr_shift_window_destructive(
    cell: Cell1T1J, i_read2: float = 200e-6, beta: float = 1.22
) -> Tuple[float, float]:
    """Allowable first-read transistor-resistance shift ``ΔR_TR`` [Ω]
    (paper Eq. 18, Fig. 7).

    Both margins are linear in the shift with slope ``± I_R1``:
    ``SM1`` grows and ``SM0`` shrinks as ΔR_TR rises, so the window is
    ``(-SM1(0)/I_R1, +SM0(0)/I_R1)`` — symmetric ``± SM/I_R1`` at the
    balanced design point.
    """
    base = destructive_margins(cell, i_read2, beta)
    i_read1 = i_read2 / beta
    return (-base.sm1 / i_read1, base.sm0 / i_read1)


def rtr_shift_window_nondestructive(
    cell: Cell1T1J, i_read2: float = 200e-6, beta: float = 2.13, alpha: float = 0.5
) -> Tuple[float, float]:
    """Allowable ``ΔR_TR`` for the nondestructive scheme [Ω] (paper Eq. 19,
    Fig. 7).  Same ``± SM/I_R1`` structure; the window is tighter simply
    because the design margin is smaller."""
    base = nondestructive_margins(cell, i_read2, beta, alpha=alpha)
    i_read1 = i_read2 / beta
    return (-base.sm1 / i_read1, base.sm0 / i_read1)


def alpha_deviation_window(
    cell: Cell1T1J, i_read2: float = 200e-6, beta: float = 2.13, alpha: float = 0.5
) -> Tuple[float, float]:
    """Allowable fractional divider-ratio deviation ``Δ`` (paper Eq. 20,
    Fig. 8) — nondestructive scheme only (the destructive scheme has no
    divider, hence "N/A" in Table II).

    ``SM1(Δ) = SM1(0) - Δ α I_R2 (R_H2 + R_T)`` and
    ``SM0(Δ) = SM0(0) + Δ α I_R2 (R_L2 + R_T)``, so

        Δ ∈ ( -SM0(0) / (α I_R2 (R_L2+R_T)),  +SM1(0) / (α I_R2 (R_H2+R_T)) )

    The asymmetry (the paper's +4.13% / −5.71%) comes from ``R_H2 > R_L2``.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    base = nondestructive_margins(cell, i_read2, beta, alpha=alpha)
    r_t2 = float(cell.transistor.resistance(i_read2))
    r_h2 = float(cell.mtj.resistance(i_read2, MTJState.ANTIPARALLEL))
    r_l2 = float(cell.mtj.resistance(i_read2, MTJState.PARALLEL))
    upper = base.sm1 / (alpha * i_read2 * (r_h2 + r_t2))
    lower = -base.sm0 / (alpha * i_read2 * (r_l2 + r_t2))
    return (lower, upper)


@dataclasses.dataclass(frozen=True)
class RobustnessSummary:
    """One scheme's row set of the paper's Table II."""

    scheme: str
    design_beta: float
    max_sense_margin: float
    beta_window: Tuple[float, float]
    rtr_window: Tuple[float, float]
    alpha_window: Optional[Tuple[float, float]]  #: None = N/A (no divider)


def robustness_summary(
    cell: Cell1T1J,
    i_read2: float = 200e-6,
    beta_destructive: Optional[float] = None,
    beta_nondestructive: Optional[float] = None,
    alpha: float = 0.5,
) -> Tuple[RobustnessSummary, RobustnessSummary]:
    """Assemble paper Table II for both self-reference schemes.

    Design β values default to the numerically optimized (balanced) points.
    """
    from repro.core.optimize import (
        optimize_beta_destructive,
        optimize_beta_nondestructive,
    )

    if beta_destructive is None:
        beta_destructive = optimize_beta_destructive(cell, i_read2).beta
    if beta_nondestructive is None:
        beta_nondestructive = optimize_beta_nondestructive(cell, i_read2, alpha).beta

    destructive = RobustnessSummary(
        scheme="destructive self-reference",
        design_beta=beta_destructive,
        max_sense_margin=destructive_margins(cell, i_read2, beta_destructive).min_margin,
        beta_window=valid_beta_window_destructive(cell, i_read2),
        rtr_window=rtr_shift_window_destructive(cell, i_read2, beta_destructive),
        alpha_window=None,
    )
    nondestructive = RobustnessSummary(
        scheme="nondestructive self-reference",
        design_beta=beta_nondestructive,
        max_sense_margin=nondestructive_margins(
            cell, i_read2, beta_nondestructive, alpha=alpha
        ).min_margin,
        beta_window=valid_beta_window_nondestructive(cell, i_read2, alpha),
        rtr_window=rtr_shift_window_nondestructive(
            cell, i_read2, beta_nondestructive, alpha
        ),
        alpha_window=alpha_deviation_window(
            cell, i_read2, beta_nondestructive, alpha
        ),
    )
    return destructive, nondestructive
