"""Conventional voltage sensing against a shared external reference
(paper §II-B, Eqs. 1–2).

One read current generates ``V_BL``; a reference ``V_REF`` between the
nominal low and high bit-line voltages is shared by many cells.  Under large
bit-to-bit MTJ resistance variation, tail bits violate
``Max(V_BL,L) < V_REF < Min(V_BL,H)`` and are always mis-read — the yield
problem that motivates self-referencing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuit.sense_amp import SenseAmplifier
from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import BatchReadResult, check_batch_inputs
from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair, conventional_margins
from repro.device.mtj import MTJState
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = ["ConventionalSensing", "shared_reference_voltage"]


def shared_reference_voltage(nominal_cell: Cell1T1J, i_read: float) -> float:
    """The shared ``V_REF``: the midpoint of the *nominal* low and high
    bit-line voltages (paper Eq. 2's feasible interval, centred)."""
    v_low = nominal_cell.bitline_voltage(i_read, MTJState.PARALLEL)
    v_high = nominal_cell.bitline_voltage(i_read, MTJState.ANTIPARALLEL)
    return 0.5 * (v_low + v_high)


class ConventionalSensing(SensingScheme):
    """External-reference sensing.

    Parameters
    ----------
    i_read:
        Read current [A]; the paper drives reads at the maximum
        non-disturbing current to maximize voltage swing.
    v_ref:
        The shared reference [V].  Give either ``v_ref`` directly or a
        ``nominal_cell`` to derive the midpoint reference from.
    sense_amp:
        Comparator model; default has the paper's 8 mV window.
    """

    name = "conventional"

    def __init__(
        self,
        i_read: float = 200e-6,
        v_ref: Optional[float] = None,
        nominal_cell: Optional[Cell1T1J] = None,
        sense_amp: Optional[SenseAmplifier] = None,
    ):
        if i_read <= 0.0:
            raise ConfigurationError(f"i_read must be positive, got {i_read}")
        if v_ref is None:
            if nominal_cell is None:
                raise ConfigurationError("give either v_ref or nominal_cell")
            v_ref = shared_reference_voltage(nominal_cell, i_read)
        if v_ref <= 0.0:
            raise ConfigurationError(f"v_ref must be positive, got {v_ref}")
        self.i_read = float(i_read)
        self.v_ref = float(v_ref)
        self.sense_amp = sense_amp if sense_amp is not None else SenseAmplifier()

    def read(
        self,
        cell: Cell1T1J,
        rng: Optional[np.random.Generator] = None,
        v_ref_error: float = 0.0,
    ) -> ReadResult:
        """One read: develop ``V_BL`` and compare against ``V_REF``.

        ``v_ref_error`` shifts the reference this cell actually sees — the
        mismatch of a physically generated shared reference (see
        :mod:`repro.core.reference`), the error source self-referencing
        removes.
        """
        expected = cell.stored_bit
        v_ref = self.v_ref + v_ref_error
        v_bl = cell.bitline_voltage(self.i_read)
        bit, metastable = self.sense_amp.compare_with_flag(v_bl, v_ref, rng)
        signed_margin = (v_bl - v_ref) if expected == 1 else (v_ref - v_bl)
        return ReadResult(
            bit=bit,
            expected_bit=expected,
            margin=signed_margin,
            voltages={"v_bl": v_bl, "v_ref": v_ref},
            data_destroyed=False,
            write_pulses=0,
            read_pulses=1,
            metastable=metastable,
        )

    def scaled_read_current(self, factor: float) -> "ConventionalSensing":
        """A copy reading at ``factor × i_read``.

        The shared reference is regenerated at the escalated current (it
        scales with the bit-line swing), so the comparison stays centred
        while the differential swing — and hence the margin — grows.
        """
        if factor == 1.0:
            return self
        if factor <= 0.0:
            raise ConfigurationError(f"escalation factor must be positive, got {factor}")
        return ConventionalSensing(
            i_read=self.i_read * factor,
            v_ref=self.v_ref * factor,
            sense_amp=self.sense_amp,
        )

    def read_many(
        self,
        population: CellPopulation,
        states: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        v_ref_error=0.0,
    ) -> BatchReadResult:
        """Vectorized read of a whole population against the shared
        reference — bit-for-bit equivalent to looping :meth:`read` over the
        materialized cells with the same RNG.

        ``v_ref_error`` may be a scalar (as in :meth:`read`) or a per-bit
        array — e.g. ``population.vref_error`` — giving each bit the
        reference its own column mismatch produces.
        """
        check_batch_inputs(population, states)
        expected = states.astype(np.uint8, copy=True)
        v_ref = self.v_ref + np.asarray(v_ref_error, dtype=float)
        v_bl = population.bitline_voltage(self.i_read, expected)
        bits, metastable = self.sense_amp.compare_bits(v_bl, v_ref, rng)
        margins = np.where(expected == 1, v_bl - v_ref, v_ref - v_bl)
        return BatchReadResult(
            scheme=self.name,
            bits=bits,
            expected_bits=expected,
            margins=margins,
            voltages={"v_bl": v_bl, "v_ref": np.broadcast_to(v_ref, v_bl.shape).copy()},
            metastable=metastable,
            data_destroyed=np.zeros(expected.shape, dtype=bool),
            write_pulses=0,
            read_pulses=1,
        )

    def sense_margins(self, cell: Cell1T1J) -> MarginPair:
        """Per-cell margins against the shared reference."""
        return conventional_margins(cell, self.i_read, self.v_ref)
