"""Common interface for sensing schemes."""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.batch import BatchReadResult
    from repro.device.variation import CellPopulation

__all__ = ["ReadResult", "SensingScheme"]


@dataclasses.dataclass(frozen=True)
class ReadResult:
    """Outcome of one read operation.

    Attributes
    ----------
    bit:
        The sensed bit, or ``None`` if the sense amplifier was metastable.
    expected_bit:
        Ground truth before the read started.
    margin:
        The differential voltage presented to the sense amplifier for this
        read, signed so that positive means "correct rail" [V].
    voltages:
        Named internal voltages (``v_bl1``, ``v_bl2``, ``v_bo``, …) [V].
    data_destroyed:
        True if the stored value was lost (destructive read interrupted, or
        a read-disturb flip).
    write_pulses / read_pulses:
        Pulse counts of the operation (latency/energy accounting).  A
        retried read accumulates the pulses of **every** attempt, so the
        counts always reflect what the cell was actually charged with.
    metastable:
        True when the sense-amplifier comparison landed inside the
        resolution window.  With an RNG the latch still resolves (to a
        random rail) and ``bit`` is not ``None``; this flag is what a retry
        controller keys on, since real latches expose late resolution even
        when they eventually fall to a rail.
    attempts:
        How many read attempts produced this result (1 for a plain read;
        >1 when a :class:`~repro.core.retry.RetryPolicy` re-read the bit).
    """

    bit: Optional[int]
    expected_bit: int
    margin: float
    voltages: Dict[str, float]
    data_destroyed: bool = False
    write_pulses: int = 0
    read_pulses: int = 1
    metastable: bool = False
    attempts: int = 1

    @property
    def correct(self) -> bool:
        """True iff the sensed bit matches the stored value."""
        return self.bit is not None and self.bit == self.expected_bit

    @property
    def resolved(self) -> bool:
        """True when the latch produced a deterministic decision (outside
        the resolution window)."""
        return self.bit is not None and not self.metastable


class SensingScheme(abc.ABC):
    """A read scheme: turns a cell's electrical state into a bit decision."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def read(
        self, cell: Cell1T1J, rng: Optional[np.random.Generator] = None
    ) -> ReadResult:
        """Perform one full read operation on ``cell``.

        May mutate the cell state (destructive scheme).  ``rng`` drives the
        stochastic parts (write success, metastability resolution).
        """

    def read_many(
        self,
        population: "CellPopulation",
        states: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> "BatchReadResult":
        """Batched behavioural read of a whole cell population.

        ``states`` holds one stored bit per population entry and is updated
        in place with whatever the reads leave behind (destructive state
        mutation included).  The RNG contract: draws are consumed exactly
        as the equivalent sequential loop of scalar :meth:`read` calls
        would consume them, so batched and per-bit reads are bit-for-bit
        interchangeable under a fixed seed.

        The three paper schemes override this with single-NumPy-pass
        kernels; the base implementation is the sequential reference loop.
        """
        from repro.core.batch import batch_from_scalar_reads

        return batch_from_scalar_reads(self, population, states, rng=rng, **kwargs)

    @abc.abstractmethod
    def sense_margins(self, cell: Cell1T1J) -> MarginPair:
        """Analytic sense margins (SM0, SM1) for this cell under this
        scheme, independent of the currently stored state."""

    def scaled_read_current(self, factor: float) -> "SensingScheme":
        """A copy of this scheme with every read current scaled by
        ``factor`` — the sense-current-escalation knob of
        :class:`~repro.core.retry.RetryPolicy`.

        ``factor == 1`` returns ``self``.  Schemes that cannot escalate
        raise :class:`~repro.errors.ConfigurationError`.
        """
        if factor == 1.0:
            return self
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"{type(self).__name__} does not support read-current escalation"
        )

    def is_readable(self, cell: Cell1T1J, required_margin: float = 8.0e-3) -> bool:
        """Whether both margins clear the sense-amplifier window (the
        paper's Fig. 11 pass/fail criterion, default 8 mV)."""
        margins = self.sense_margins(cell)
        return margins.min_margin > required_margin
