"""Common interface for sensing schemes."""

from __future__ import annotations

import abc
import dataclasses
import functools
import time
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair
from repro.obs import runtime as _obs
from repro.obs.trace import READ_ISSUED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.batch import BatchReadResult
    from repro.device.variation import CellPopulation

__all__ = ["ReadResult", "SensingScheme"]


def _instrument_scalar_read(func):
    """Count scalar reads into the observability registry when active.

    Installed on every concrete scheme's ``read`` by
    :meth:`SensingScheme.__init_subclass__`; a no-op boolean check when
    observability is disabled, and never consumes RNG draws.
    """

    @functools.wraps(func)
    def read(self, *args, **kwargs):
        result = func(self, *args, **kwargs)
        if _obs.active():
            registry = _obs.get_registry()
            registry.inc("core.reads.scalar", scheme=self.name)
            if result.metastable:
                registry.inc("core.reads.scalar_metastable", scheme=self.name)
        return result

    read.__obs_instrumented__ = True
    return read


def _instrument_batch_read(func):
    """Meter batched reads: bit counts, metastability, errors, timing."""

    @functools.wraps(func)
    def read_many(self, *args, **kwargs):
        if not _obs.active():
            return func(self, *args, **kwargs)
        start = time.perf_counter()
        batch = func(self, *args, **kwargs)
        elapsed = time.perf_counter() - start
        registry = _obs.get_registry()
        registry.inc("core.reads.batch", scheme=self.name)
        registry.inc("core.reads.bits", batch.size, scheme=self.name)
        metastable = batch.metastable_count
        if metastable:
            registry.inc("core.reads.metastable_bits", metastable, scheme=self.name)
        errors = batch.error_count
        if errors:
            registry.inc("core.reads.error_bits", errors, scheme=self.name)
        registry.observe_profile("core.read_many", elapsed)
        _obs.trace(
            READ_ISSUED,
            scheme=self.name,
            bits=batch.size,
            metastable=metastable,
        )
        return batch

    read_many.__obs_instrumented__ = True
    return read_many


@dataclasses.dataclass(frozen=True)
class ReadResult:
    """Outcome of one read operation.

    Attributes
    ----------
    bit:
        The sensed bit, or ``None`` if the sense amplifier was metastable.
    expected_bit:
        Ground truth before the read started.
    margin:
        The differential voltage presented to the sense amplifier for this
        read, signed so that positive means "correct rail" [V].
    voltages:
        Named internal voltages (``v_bl1``, ``v_bl2``, ``v_bo``, …) [V].
    data_destroyed:
        True if the stored value was lost (destructive read interrupted, or
        a read-disturb flip).
    write_pulses / read_pulses:
        Pulse counts of the operation (latency/energy accounting).  A
        retried read accumulates the pulses of **every** attempt, so the
        counts always reflect what the cell was actually charged with.
    metastable:
        True when the sense-amplifier comparison landed inside the
        resolution window.  With an RNG the latch still resolves (to a
        random rail) and ``bit`` is not ``None``; this flag is what a retry
        controller keys on, since real latches expose late resolution even
        when they eventually fall to a rail.
    attempts:
        How many read attempts produced this result (1 for a plain read;
        >1 when a :class:`~repro.core.retry.RetryPolicy` re-read the bit).
    """

    bit: Optional[int]
    expected_bit: int
    margin: float
    voltages: Dict[str, float]
    data_destroyed: bool = False
    write_pulses: int = 0
    read_pulses: int = 1
    metastable: bool = False
    attempts: int = 1

    @property
    def correct(self) -> bool:
        """True iff the sensed bit matches the stored value."""
        return self.bit is not None and self.bit == self.expected_bit

    @property
    def resolved(self) -> bool:
        """True when the latch produced a deterministic decision (outside
        the resolution window)."""
        return self.bit is not None and not self.metastable

    @property
    def metrics(self) -> Dict[str, float]:
        """Operation-level metrics snapshot of this read.

        The per-operation counterpart of the process-wide
        :mod:`repro.obs` registry: everything the read cost and produced,
        as a flat dict of numbers (deterministic — no wall-clock).  The
        keys mirror the ``core.reads.*`` / ``retry.*`` counter catalog in
        ``docs/OBSERVABILITY.md``.
        """
        return {
            "attempts": float(self.attempts),
            "read_pulses": float(self.read_pulses),
            "write_pulses": float(self.write_pulses),
            "metastable": float(self.metastable),
            "data_destroyed": float(self.data_destroyed),
            "correct": float(self.correct),
            "margin_v": float(self.margin),
        }


class SensingScheme(abc.ABC):
    """A read scheme: turns a cell's electrical state into a bit decision."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    def __init_subclass__(cls, **kwargs):
        """Auto-instrument concrete schemes for :mod:`repro.obs`.

        Any ``read`` / ``read_many`` a subclass defines is wrapped with
        the observability meters; the wrappers cost one boolean check when
        observability is off and never touch the RNG stream, so scalar/
        batch bit-exactness contracts are unaffected.
        """
        super().__init_subclass__(**kwargs)
        read = cls.__dict__.get("read")
        if read is not None and not getattr(read, "__obs_instrumented__", False):
            cls.read = _instrument_scalar_read(read)
        read_many = cls.__dict__.get("read_many")
        if read_many is not None and not getattr(
            read_many, "__obs_instrumented__", False
        ):
            cls.read_many = _instrument_batch_read(read_many)

    @abc.abstractmethod
    def read(
        self, cell: Cell1T1J, rng: Optional[np.random.Generator] = None
    ) -> ReadResult:
        """Perform one full read operation on ``cell``.

        May mutate the cell state (destructive scheme).  ``rng`` drives the
        stochastic parts (write success, metastability resolution).
        """

    def read_many(
        self,
        population: "CellPopulation",
        states: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> "BatchReadResult":
        """Batched behavioural read of a whole cell population.

        ``states`` holds one stored bit per population entry and is updated
        in place with whatever the reads leave behind (destructive state
        mutation included).  The RNG contract: draws are consumed exactly
        as the equivalent sequential loop of scalar :meth:`read` calls
        would consume them, so batched and per-bit reads are bit-for-bit
        interchangeable under a fixed seed.

        The three paper schemes override this with single-NumPy-pass
        kernels; the base implementation is the sequential reference loop.
        """
        from repro.core.batch import batch_from_scalar_reads

        return batch_from_scalar_reads(self, population, states, rng=rng, **kwargs)

    @abc.abstractmethod
    def sense_margins(self, cell: Cell1T1J) -> MarginPair:
        """Analytic sense margins (SM0, SM1) for this cell under this
        scheme, independent of the currently stored state."""

    def scaled_read_current(self, factor: float) -> "SensingScheme":
        """A copy of this scheme with every read current scaled by
        ``factor`` — the sense-current-escalation knob of
        :class:`~repro.core.retry.RetryPolicy`.

        ``factor == 1`` returns ``self``.  Schemes that cannot escalate
        raise :class:`~repro.errors.ConfigurationError`.
        """
        if factor == 1.0:
            return self
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"{type(self).__name__} does not support read-current escalation"
        )

    def is_readable(self, cell: Cell1T1J, required_margin: float = 8.0e-3) -> bool:
        """Whether both margins clear the sense-amplifier window (the
        paper's Fig. 11 pass/fail criterion, default 8 mV)."""
        margins = self.sense_margins(cell)
        return margins.min_margin > required_margin
