"""The paper's contribution: nondestructive self-reference sensing
(its §III, Fig. 5, Eqs. 6–10).

Key physical fact (paper Fig. 2): the anti-parallel state's resistance
rolls off steeply with read current; the parallel state's barely moves.
So two reads of the *same, untouched* cell at currents ``I_R1`` and
``I_R2 = β I_R1`` distinguish the states:

* stored "1": ``R_H`` collapses at the larger current, so
  ``V_BL1 = I_R1 (R_H1 + R_T)`` stays well above
  ``α V_BL2 = α I_R2 (R_H2 + R_T)`` (with ``α ≈ 1/β``);
* stored "0": ``R_L`` is flat, so ``V_BL1`` falls below ``α V_BL2``.

No erase, no write back: the read is nondestructive, non-volatility is
preserved, and the two write pulses of the prior-art scheme disappear from
the latency/energy budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuit.divider import VoltageDivider
from repro.circuit.sense_amp import SenseAmplifier
from repro.circuit.storage import SampleCapacitor
from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import BatchReadResult, check_batch_inputs
from repro.core.cell import Cell1T1J
from repro.core.margins import MarginPair, nondestructive_margins
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = ["NondestructiveSelfReference"]


class NondestructiveSelfReference(SensingScheme):
    """Nondestructive self-reference scheme.

    Parameters
    ----------
    i_read2:
        Second-read current [A], normally the maximum non-disturbing
        current (paper §III-B: larger ``I_max`` widens the margin).
    beta:
        Read-current ratio ``I_R2 / I_R1``.  Must satisfy ``α β ≥ 1`` for a
        positive "0" margin; the paper's optimized value is 2.13 at
        ``α = 0.5``.
    divider:
        Voltage divider producing ``V_BO = α V_BL2``; the paper designs
        ``α = 0.5`` (symmetric, variation-tolerant) with tens-of-MΩ
        impedance.
    rtr_shift:
        ``ΔR_TR`` applied to the first read (robustness studies).
    sense_amp / capacitor:
        Peripheral models (8 mV window by default).
    """

    name = "nondestructive self-reference"

    def __init__(
        self,
        i_read2: float = 200e-6,
        beta: float = 2.13,
        divider: Optional[VoltageDivider] = None,
        rtr_shift: float = 0.0,
        sense_amp: Optional[SenseAmplifier] = None,
        capacitor: Optional[SampleCapacitor] = None,
    ):
        if i_read2 <= 0.0:
            raise ConfigurationError(f"i_read2 must be positive, got {i_read2}")
        if beta <= 1.0:
            raise ConfigurationError(f"beta must exceed 1, got {beta}")
        self.i_read2 = float(i_read2)
        self.beta = float(beta)
        self.divider = divider if divider is not None else VoltageDivider(ratio=0.5)
        self.rtr_shift = float(rtr_shift)
        self.sense_amp = sense_amp if sense_amp is not None else SenseAmplifier()
        self.capacitor_template = capacitor if capacitor is not None else SampleCapacitor()

    @property
    def i_read1(self) -> float:
        """First-read current ``I_R2 / β`` [A]."""
        return self.i_read2 / self.beta

    @property
    def alpha(self) -> float:
        """Designed divider ratio ``α``."""
        return self.divider.ratio

    def read(
        self,
        cell: Cell1T1J,
        rng: Optional[np.random.Generator] = None,
        hold_time: float = 5e-9,
    ) -> ReadResult:
        """Full nondestructive read: two reads, divide, compare.

        The cell state is never written; the only (astronomically unlikely)
        state change would be a read disturb, which this behavioural read
        does not roll — see
        :meth:`repro.device.switching.SwitchingModel.read_disturb_probability`
        for its magnitude.
        """
        expected = cell.stored_bit

        # Phase 1: first read at I_R1, sample onto C1 (SLT1 closed).
        v_bl1 = cell.bitline_voltage(self.i_read1)
        if self.rtr_shift != 0.0:
            v_bl1 += self.i_read1 * self.rtr_shift
        cap1 = SampleCapacitor(
            self.capacitor_template.capacitance,
            self.capacitor_template.switch_resistance,
            self.capacitor_template.leakage_resistance,
        )
        cap1.sample(v_bl1, duration=10.0 * cap1.charge_time_constant)
        cap1.hold(hold_time)

        # Phase 2: second read at I_R2 through the divider (SLT2 closed).
        # The divider's high impedance steals a negligible share of the
        # read current — modelled via its loading error.
        v_bl2_ideal = cell.bitline_voltage(self.i_read2)
        source_r = cell.effective_resistance(self.i_read2)
        v_bl2 = v_bl2_ideal * (1.0 - self.divider.loading_error(source_r))
        v_bo = self.divider.output(v_bl2)

        # Phase 3: compare V_BL1 (on C1) against V_BO; latch.
        bit, metastable = self.sense_amp.compare_with_flag(cap1.stored_voltage, v_bo, rng)
        signed_margin = (
            (cap1.stored_voltage - v_bo) if expected == 1 else (v_bo - cap1.stored_voltage)
        )
        return ReadResult(
            bit=bit,
            expected_bit=expected,
            margin=signed_margin,
            voltages={
                "v_bl1": cap1.stored_voltage,
                "v_bl2": v_bl2,
                "v_bo": v_bo,
            },
            data_destroyed=False,
            write_pulses=0,
            read_pulses=2,
            metastable=metastable,
        )

    def scaled_read_current(self, factor: float) -> "NondestructiveSelfReference":
        """A copy reading at ``factor × i_read2`` (β, α unchanged).

        Escalating past the designed ``I_max`` trades read-disturb headroom
        for margin — the retry controller only does it for bits that failed
        to resolve at the design point.
        """
        if factor == 1.0:
            return self
        if factor <= 0.0:
            raise ConfigurationError(f"escalation factor must be positive, got {factor}")
        return NondestructiveSelfReference(
            i_read2=self.i_read2 * factor,
            beta=self.beta,
            divider=self.divider,
            rtr_shift=self.rtr_shift,
            sense_amp=self.sense_amp,
            capacitor=self.capacitor_template,
        )

    def read_many(
        self,
        population: CellPopulation,
        states: np.ndarray,
        *,
        rng: Optional[np.random.Generator] = None,
        hold_time: float = 5e-9,
    ) -> BatchReadResult:
        """Vectorized nondestructive read of a whole population.

        All three phases of :meth:`read` run as single array passes: both
        bit-line voltages from the population's state-dependent resistances,
        the C1 sample/hold on an array-valued capacitor, the divider with
        its per-bit loading error, one batched comparison.  The cell states
        are untouched (the scheme is nondestructive), and the result is
        bit-for-bit identical to the sequential scalar loop under the same
        RNG.
        """
        check_batch_inputs(population, states)
        expected = states.astype(np.uint8, copy=True)

        # Phase 1: first read at I_R1, sample onto C1 (SLT1 closed).
        v_bl1 = population.bitline_voltage(self.i_read1, expected)
        if self.rtr_shift != 0.0:
            v_bl1 = v_bl1 + self.i_read1 * self.rtr_shift
        cap1 = self.capacitor_template.fresh()
        cap1.sample(v_bl1, duration=10.0 * cap1.charge_time_constant)
        cap1.hold(hold_time)

        # Phase 2: second read at I_R2 through the divider (SLT2 closed).
        v_bl2_ideal = population.bitline_voltage(self.i_read2, expected)
        source_r = population.series_resistance(self.i_read2, expected)
        v_bl2 = v_bl2_ideal * (1.0 - self.divider.loading_error(source_r))
        v_bo = self.divider.output(v_bl2)

        # Phase 3: compare V_BL1 (on C1) against V_BO; latch.
        bits, metastable = self.sense_amp.compare_bits(cap1.stored_voltage, v_bo, rng)
        margins = np.where(
            expected == 1, cap1.stored_voltage - v_bo, v_bo - cap1.stored_voltage
        )
        return BatchReadResult(
            scheme=self.name,
            bits=bits,
            expected_bits=expected,
            margins=margins,
            voltages={"v_bl1": cap1.stored_voltage, "v_bl2": v_bl2, "v_bo": v_bo},
            metastable=metastable,
            data_destroyed=np.zeros(expected.shape, dtype=bool),
            write_pulses=0,
            read_pulses=2,
        )

    def sense_margins(self, cell: Cell1T1J) -> MarginPair:
        """Analytic margins (paper Eqs. 8–9 with the ideal divider)."""
        return nondestructive_margins(
            cell,
            self.i_read2,
            self.beta,
            alpha=self.divider.ratio,
            alpha_deviation=self.divider.ratio_deviation,
            rtr_shift=self.rtr_shift,
        )
