"""Test-time trimming of the read-current ratio.

The paper (§V): "Based on our experience, the variation control of voltage
ratio α is very difficult.  In the design of our testing chip, the current
ratio β of read current driver can be adjusted in testing stage to
compensate the voltage ratio α variation."

Two trimming operations are provided:

* :func:`beta_compensating_alpha` — the paper's exact knob: given the
  *realized* divider ratio of a fabricated part, recompute the β that
  re-balances the margins (a per-chip trim);
* :func:`trim_population_beta` — array-level trim: choose the single β that
  maximizes the chip's worst-bit binding margin (equivalently its yield)
  over a measured Monte-Carlo population.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.core.cell import Cell1T1J
from repro.core.margins import (
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.core.optimize import BetaOptimum, optimize_beta_nondestructive
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError, ConvergenceError

__all__ = ["TrimResult", "beta_compensating_alpha", "trim_population_beta"]


@dataclasses.dataclass(frozen=True)
class TrimResult:
    """Outcome of an array-level β trim."""

    scheme: str
    beta: float                 #: the trimmed ratio
    worst_margin: float         #: worst-bit binding margin at the trim [V]
    yield_fraction: float       #: fraction of bits clearing the window
    required_margin: float      #: the sense window the yield refers to [V]


def beta_compensating_alpha(
    cell: Cell1T1J,
    alpha_design: float,
    alpha_deviation: float,
    i_read2: float = 200e-6,
) -> BetaOptimum:
    """Re-balance the nondestructive margins for a part whose divider came
    out at ``α_design (1 + Δ)`` — the paper's test-stage compensation.

    Returns the re-optimized operating point at the *realized* ratio.  The
    compensation restores the balanced margin almost completely for
    deviations well inside the Fig. 8 window.
    """
    realized = alpha_design * (1.0 + alpha_deviation)
    if not 0.0 < realized < 1.0:
        raise ConfigurationError(
            f"realized divider ratio {realized} out of (0, 1); part is untrimmable"
        )
    return optimize_beta_nondestructive(cell, i_read2, alpha=realized)


def _population_min_margin(
    population: CellPopulation,
    scheme: str,
    beta: float,
    i_read2: float,
    alpha: float,
) -> Tuple[np.ndarray, np.ndarray]:
    if scheme == "nondestructive":
        return population_nondestructive_margins(
            population, i_read2, beta, alpha=alpha
        )
    if scheme == "destructive":
        return population_destructive_margins(population, i_read2, beta)
    raise ConfigurationError(f"unknown self-reference scheme {scheme!r}")


def trim_population_beta(
    population: CellPopulation,
    scheme: str = "nondestructive",
    i_read2: float = 200e-6,
    alpha: float = 0.5,
    required_margin: float = 8.0e-3,
    beta_bounds: Tuple[float, float] = (1.01, 4.0),
    grid_points: int = 64,
) -> TrimResult:
    """Choose the β maximizing the worst-bit binding margin of a measured
    population (max-min trim).

    The worst-bit margin is a concave-ish unimodal function of β (each
    bit's SM0 rises and SM1 falls monotonically), so a coarse grid scan
    followed by a bounded scalar refinement is robust.
    """
    if population.size == 0:
        raise ConfigurationError("population is empty")
    if grid_points < 4:
        raise ConfigurationError("grid_points must be >= 4")

    def worst_margin(beta: float) -> float:
        sm0, sm1 = _population_min_margin(population, scheme, beta, i_read2, alpha)
        return float(np.min(np.minimum(sm0, sm1)))

    grid = np.linspace(beta_bounds[0], beta_bounds[1], grid_points)
    values = np.array([worst_margin(float(b)) for b in grid])
    best = int(np.argmax(values))
    if values[best] == -np.inf or not np.isfinite(values[best]):
        raise ConvergenceError("trim scan produced no finite margins")

    lower = grid[max(best - 1, 0)]
    upper = grid[min(best + 1, grid_points - 1)]
    refined = minimize_scalar(
        lambda b: -worst_margin(float(b)),
        bounds=(float(lower), float(upper)),
        method="bounded",
        options={"xatol": 1e-6},
    )
    beta = float(refined.x)
    if worst_margin(beta) < values[best]:
        beta = float(grid[best])

    sm0, sm1 = _population_min_margin(population, scheme, beta, i_read2, alpha)
    binding = np.minimum(sm0, sm1)
    return TrimResult(
        scheme=scheme,
        beta=beta,
        worst_margin=float(np.min(binding)),
        yield_fraction=float(np.mean(binding > required_margin)),
        required_margin=required_margin,
    )
