"""Redundancy repair: spare rows/columns remapping failing bits.

Production memories ship with spare rows and columns; post-test repair
remaps the addresses containing failing bits.  Combined with the
Monte-Carlo fail maps this quantifies how many spares each sensing scheme
needs at a given variation level — the manufacturing-cost complement of
the ECC analysis (A8).

The allocator is the standard greedy must-repair algorithm: any row
(column) with more failing bits than the remaining column (row) spares
*must* take a row (column) spare; remaining isolated fails take whichever
spare kind is left.
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RepairPlan", "allocate_repair"]


@dataclasses.dataclass(frozen=True)
class RepairPlan:
    """Result of a spare allocation."""

    rows: int
    columns: int
    spare_rows_used: List[int]
    spare_columns_used: List[int]
    unrepaired_fails: int

    @property
    def repaired(self) -> bool:
        """True when every failing bit is covered by a spare."""
        return self.unrepaired_fails == 0

    @property
    def spares_used(self) -> int:
        """Total spares consumed."""
        return len(self.spare_rows_used) + len(self.spare_columns_used)


def allocate_repair(
    fail_mask: np.ndarray,
    rows: int,
    columns: int,
    spare_rows: int,
    spare_columns: int,
) -> RepairPlan:
    """Greedy must-repair spare allocation over a row-major fail mask.

    Parameters
    ----------
    fail_mask:
        Boolean array of length ``rows * columns`` (row-major bit order).
    spare_rows / spare_columns:
        Available redundancy.
    """
    mask = np.asarray(fail_mask, dtype=bool)
    if mask.size != rows * columns:
        raise ConfigurationError(
            f"fail mask of {mask.size} bits does not match {rows}x{columns}"
        )
    if spare_rows < 0 or spare_columns < 0:
        raise ConfigurationError("spare counts must be non-negative")
    grid = mask.reshape(rows, columns).copy()

    used_rows: List[int] = []
    used_columns: List[int] = []
    remaining_rows = spare_rows
    remaining_columns = spare_columns

    # Must-repair passes: a line with more fails than the other dimension's
    # remaining spares can only be fixed by replacing the line itself.
    changed = True
    while changed:
        changed = False
        row_fail_counts = grid.sum(axis=1)
        for row in np.nonzero(row_fail_counts > remaining_columns)[0]:
            if remaining_rows <= 0:
                continue
            if row_fail_counts[row] == 0:
                continue
            grid[row, :] = False
            used_rows.append(int(row))
            remaining_rows -= 1
            changed = True
        column_fail_counts = grid.sum(axis=0)
        for column in np.nonzero(column_fail_counts > remaining_rows)[0]:
            if remaining_columns <= 0:
                continue
            if column_fail_counts[column] == 0:
                continue
            grid[:, column] = False
            used_columns.append(int(column))
            remaining_columns -= 1
            changed = True

    # Sparse remainder: cover the heaviest lines first with whatever is left.
    while grid.any() and (remaining_rows > 0 or remaining_columns > 0):
        row_fail_counts = grid.sum(axis=1)
        column_fail_counts = grid.sum(axis=0)
        best_row = int(np.argmax(row_fail_counts))
        best_column = int(np.argmax(column_fail_counts))
        take_row = (
            remaining_rows > 0
            and (
                remaining_columns == 0
                or row_fail_counts[best_row] >= column_fail_counts[best_column]
            )
        )
        if take_row:
            grid[best_row, :] = False
            used_rows.append(best_row)
            remaining_rows -= 1
        else:
            grid[:, best_column] = False
            used_columns.append(best_column)
            remaining_columns -= 1

    return RepairPlan(
        rows=rows,
        columns=columns,
        spare_rows_used=sorted(used_rows),
        spare_columns_used=sorted(used_columns),
        unrepaired_fails=int(grid.sum()),
    )
