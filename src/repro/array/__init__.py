"""Memory-array modelling: behavioural arrays, Monte-Carlo margins, yield
analysis, and the 16kb test-chip experiment (paper Fig. 11)."""

from repro.array.array import STTRAMArray, WordReadResult
from repro.array.organization import ArrayOrganization, BankThroughput, bank_throughput, throughput_comparison
from repro.array.montecarlo import MonteCarloMargins, SchemeMargins, run_margin_monte_carlo
from repro.array.repair import RepairPlan, allocate_repair
from repro.array.scheduler import QueueingResult, simulate_read_queue
from repro.array.testflow import DieResult, TestFlowConfig, run_test_flow, yield_curve
from repro.array.stress import StressReport, run_read_stress
from repro.array.testchip import (
    TESTCHIP_VARIATION,
    BehavioralReadSummary,
    TestChip,
    TestChipResult,
    run_testchip_behavioral,
    run_testchip_experiment,
)
from repro.array.yield_analysis import MarginStatistics, YieldReport, analyze_margins

__all__ = [
    "STTRAMArray",
    "WordReadResult",
    "ArrayOrganization",
    "BankThroughput",
    "bank_throughput",
    "throughput_comparison",
    "SchemeMargins",
    "MonteCarloMargins",
    "run_margin_monte_carlo",
    "MarginStatistics",
    "YieldReport",
    "analyze_margins",
    "RepairPlan",
    "allocate_repair",
    "QueueingResult",
    "simulate_read_queue",
    "DieResult",
    "TestFlowConfig",
    "run_test_flow",
    "yield_curve",
    "StressReport",
    "run_read_stress",
    "TESTCHIP_VARIATION",
    "TestChip",
    "TestChipResult",
    "BehavioralReadSummary",
    "run_testchip_experiment",
    "run_testchip_behavioral",
]
