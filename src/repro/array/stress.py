"""Read-stress campaigns: silent-corruption accounting under repeated reads.

The destructive scheme turns every read into two stochastic write pulses;
with a marginal write driver its silent-corruption rate dwarfs any sensing
error.  The nondestructive scheme issues no writes.  This module runs a
behavioural stress campaign over an array and tallies the damage per
scheme — the system-level version of ablation A10.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.array.array import STTRAMArray
from repro.core.base import SensingScheme
from repro.errors import ConfigurationError

__all__ = ["StressReport", "run_read_stress"]


@dataclasses.dataclass(frozen=True)
class StressReport:
    """Outcome of one read-stress campaign."""

    scheme: str
    reads: int
    misreads: int            #: sensed value != stored-at-time-of-read
    corruptions: int         #: stored value damaged by the read itself
    final_data_intact: bool  #: array contents equal the original pattern

    @property
    def misread_rate(self) -> float:
        """Fraction of reads returning the wrong value."""
        return self.misreads / self.reads if self.reads else 0.0

    @property
    def corruption_rate(self) -> float:
        """Fraction of reads that damaged the stored value."""
        return self.corruptions / self.reads if self.reads else 0.0


def run_read_stress(
    array: STTRAMArray,
    scheme: SensingScheme,
    reads: int,
    rng: Optional[np.random.Generator] = None,
    pattern_seed: int = 1,
) -> StressReport:
    """Hammer the array with ``reads`` random single-bit reads.

    The array is first filled with a random pattern; every read's sensed
    value is checked against the expected bit, and the stored bit is
    re-checked after the read (a destructive read that mis-writes-back, or
    whose write pulse fails stochastically, shows up here).

    The campaign is batched: the random read addresses are drawn up front
    and issued as rounds of distinct-index batches through
    :meth:`~repro.array.array.STTRAMArray.read_bits` (a repeated address
    closes a round, since one cell cannot be sensed twice concurrently), so
    a million-read campaign is a handful of kernel passes instead of a
    million materialized cells.
    """
    if reads < 1:
        raise ConfigurationError("reads must be >= 1")
    if rng is None:
        rng = np.random.default_rng()

    pattern_rng = np.random.default_rng(pattern_seed)
    original = pattern_rng.integers(0, 2, array.size_bits).astype(np.uint8)
    array._states[:] = original

    indices = rng.integers(0, array.size_bits, size=reads)
    misreads = 0
    corruptions = 0
    expected = original.copy()
    start = 0
    while start < reads:
        seen = set()
        stop = start
        while stop < reads and int(indices[stop]) not in seen:
            seen.add(int(indices[stop]))
            stop += 1
        chunk = indices[start:stop]
        before = expected[chunk].copy()
        result = array.read_bits(chunk, scheme, rng)
        misreads += int(np.count_nonzero(result.bits != before))
        after = array.stored_bits()[chunk]
        corruptions += int(np.count_nonzero(after != before))
        expected[chunk] = after  # track the damage forward
        start = stop

    final_intact = bool(np.array_equal(array.stored_bits(), original))
    return StressReport(
        scheme=scheme.name,
        reads=reads,
        misreads=misreads,
        corruptions=corruptions,
        final_data_intact=final_intact,
    )
