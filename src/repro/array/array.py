"""Behavioural STT-RAM array: store data, read it back through any scheme.

Where the Monte-Carlo engine computes *margins* in closed form, this class
actually performs reads, routed through the vectorized batch kernel
(:meth:`repro.core.base.SensingScheme.read_many`): one NumPy pass senses a
word, a list of bits, or the whole array — including the destructive
scheme's erase/write-back side effects and injected power failures.  The
scalar :meth:`read_bit` is a batch of one, so every entry point shares the
same kernel (and the same RNG stream as the historical per-cell loop).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.array.montecarlo import run_margin_monte_carlo
from repro.core.base import ReadResult, SensingScheme
from repro.core.batch import BatchReadResult
from repro.core.retry import BatchRetryResult, RetryPolicy, read_many_with_retry
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs

__all__ = ["STTRAMArray", "WordReadResult"]


def _meter_array_read(api: str, bits: int) -> None:
    """Count one array-level read entry point (no-op when obs is off)."""
    if _obs.active():
        registry = _obs.get_registry()
        registry.inc("array.reads", api=api)
        registry.inc("array.bits_read", bits, api=api)


@dataclasses.dataclass(frozen=True)
class WordReadResult:
    """One word read through the batch kernel.

    ``value`` packs the sensed bits LSB-first with unresolved (metastable,
    no-RNG) bits as 0 — the historical :meth:`STTRAMArray.read_word`
    convention.  ``metastable_bits`` counts comparisons that landed inside
    the sense-amplifier window, letting callers distinguish "read 0" from
    "failed to resolve"; ``batch`` keeps the full per-bit detail.
    """

    value: int
    metastable_bits: int
    batch: BatchReadResult

    @property
    def resolved(self) -> bool:
        """True when every bit latched deterministically."""
        return self.metastable_bits == 0


class STTRAMArray:
    """A word-addressable array over a sampled cell population.

    Parameters
    ----------
    population:
        Per-bit electrical parameters (one array entry per cell).
    word_width:
        Bits per word; the array holds ``population.size // word_width``
        words.
    """

    def __init__(self, population: CellPopulation, word_width: int = 8):
        if word_width < 1:
            raise ConfigurationError("word_width must be >= 1")
        if population.size < word_width:
            raise ConfigurationError("population smaller than one word")
        self.population = population
        self.word_width = word_width
        self._states = np.zeros(population.size, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def size_bits(self) -> int:
        """Total number of cells."""
        return self.population.size

    @property
    def size_words(self) -> int:
        """Number of addressable words."""
        return self.population.size // self.word_width

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise IndexError(f"address {address} out of range [0, {self.size_words})")

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Store ``value`` (``word_width`` bits, LSB first) at ``address``."""
        self._check_address(address)
        if not 0 <= value < (1 << self.word_width):
            raise ValueError(f"value {value} does not fit in {self.word_width} bits")
        base = address * self.word_width
        raw = value.to_bytes((self.word_width + 7) // 8, "little")
        self._states[base:base + self.word_width] = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8),
            count=self.word_width,
            bitorder="little",
        )

    def read_bits(
        self,
        bit_indices: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        assume_distinct: bool = False,
        **kwargs,
    ) -> BatchReadResult:
        """Read the given cells as one batch and sync the array state.

        The indices must be distinct: a batched read senses every cell
        once, concurrently, so reading the same cell twice in one batch has
        no sequential meaning (issue separate calls instead).
        ``assume_distinct=True`` skips the O(n log n) uniqueness check for
        callers whose indices are distinct by construction (e.g. codeword
        spans of distinct word addresses) — it changes nothing else.
        """
        idx = np.asarray(bit_indices, dtype=np.intp)
        if idx.ndim != 1:
            raise ConfigurationError("bit_indices must be one-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= self.size_bits):
            raise IndexError(
                f"bit indices out of range [0, {self.size_bits}): {idx.min()}..{idx.max()}"
            )
        if not assume_distinct and np.unique(idx).size != idx.size:
            raise ConfigurationError("bit_indices must be distinct within one batch")
        _meter_array_read("read_bits", int(idx.size))
        states = self._states[idx].copy()
        result = scheme.read_many(self.population.subset(idx), states, rng=rng, **kwargs)
        self._states[idx] = states
        return result

    def read_all(
        self,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> BatchReadResult:
        """Read every cell of the array in one kernel pass."""
        _meter_array_read("read_all", self.size_bits)
        return scheme.read_many(self.population, self._states, rng=rng, **kwargs)

    def read_bits_with_retry(
        self,
        bit_indices: Sequence[int],
        scheme: SensingScheme,
        policy: RetryPolicy,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> BatchRetryResult:
        """Read the given (distinct) cells as one retried batch: unresolved
        bits are re-sensed per ``policy`` and the array state tracks every
        attempt's side effects."""
        idx = np.asarray(bit_indices, dtype=np.intp)
        if idx.ndim != 1:
            raise ConfigurationError("bit_indices must be one-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= self.size_bits):
            raise IndexError(
                f"bit indices out of range [0, {self.size_bits}): {idx.min()}..{idx.max()}"
            )
        if np.unique(idx).size != idx.size:
            raise ConfigurationError("bit_indices must be distinct within one batch")
        _meter_array_read("read_bits_with_retry", int(idx.size))
        states = self._states[idx].copy()
        result = read_many_with_retry(
            scheme, self.population.subset(idx), states, policy, rng=rng, **kwargs
        )
        self._states[idx] = states
        return result

    def read_all_with_retry(
        self,
        scheme: SensingScheme,
        policy: RetryPolicy,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> BatchRetryResult:
        """Read every cell with retries — one kernel pass per attempt
        round, later rounds restricted to the unresolved subset."""
        _meter_array_read("read_all_with_retry", self.size_bits)
        return read_many_with_retry(
            scheme, self.population, self._states, policy, rng=rng, **kwargs
        )

    def read_bit(
        self,
        bit_index: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> ReadResult:
        """Read one cell through ``scheme`` — a batch of one."""
        if not 0 <= bit_index < self.size_bits:
            raise IndexError(f"bit {bit_index} out of range [0, {self.size_bits})")
        return self.read_bits([bit_index], scheme, rng).result(0)

    def read_word_result(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> WordReadResult:
        """Read the word at ``address`` with full per-bit detail.

        The scheme may mutate cell state (destructive reads); the array's
        state tracks whatever the scheme leaves behind.
        """
        self._check_address(address)
        base = address * self.word_width
        batch = self.read_bits(range(base, base + self.word_width), scheme, rng)
        bits = batch.bit_values()
        value = int(bits @ (1 << np.arange(self.word_width, dtype=np.int64)))
        return WordReadResult(
            value=value, metastable_bits=batch.metastable_count, batch=batch
        )

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Read the word at ``address``; metastable bits resolve to 0.

        Use :meth:`read_word_result` to also learn *how many* bits were
        metastable rather than cleanly sensed.
        """
        return self.read_word_result(address, scheme, rng).value

    def read_words(
        self,
        addresses: Sequence[int],
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> List[WordReadResult]:
        """Read several (distinct) words, each as its own batch."""
        return [self.read_word_result(address, scheme, rng) for address in addresses]

    def stored_bits(self) -> np.ndarray:
        """Ground-truth copy of all stored bits."""
        return self._states.copy()

    # ------------------------------------------------------------------
    # Bulk analysis
    # ------------------------------------------------------------------
    def margin_survey(self, **monte_carlo_kwargs):
        """Closed-form per-bit margins of all three schemes (delegates to
        :func:`repro.array.montecarlo.run_margin_monte_carlo`)."""
        return run_margin_monte_carlo(self.population, **monte_carlo_kwargs)

    def failing_bits(
        self,
        scheme_name: str,
        required_margin: float = 8.0e-3,
        **monte_carlo_kwargs,
    ) -> List[int]:
        """Indices of bits the named scheme cannot read reliably."""
        margins = self.margin_survey(**monte_carlo_kwargs)[scheme_name]
        return list(np.nonzero(margins.fail_mask(required_margin))[0])
