"""Behavioural STT-RAM array: store data, read it back through any scheme.

Where the Monte-Carlo engine computes *margins* in closed form, this class
actually performs reads and writes bit by bit (materializing each cell),
which lets integration tests and examples exercise the full read pipeline —
including the destructive scheme's erase/write-back side effects and
injected power failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.array.montecarlo import run_margin_monte_carlo
from repro.core.base import ReadResult, SensingScheme
from repro.core.cell import Cell1T1J
from repro.device.mtj import MTJState
from repro.device.transistor import FixedResistanceTransistor
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = ["STTRAMArray"]


class STTRAMArray:
    """A word-addressable array over a sampled cell population.

    Parameters
    ----------
    population:
        Per-bit electrical parameters (one array entry per cell).
    word_width:
        Bits per word; the array holds ``population.size // word_width``
        words.
    """

    def __init__(self, population: CellPopulation, word_width: int = 8):
        if word_width < 1:
            raise ConfigurationError("word_width must be >= 1")
        if population.size < word_width:
            raise ConfigurationError("population smaller than one word")
        self.population = population
        self.word_width = word_width
        self._cells: Dict[int, Cell1T1J] = {}
        self._states = np.zeros(population.size, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def size_bits(self) -> int:
        """Total number of cells."""
        return self.population.size

    @property
    def size_words(self) -> int:
        """Number of addressable words."""
        return self.population.size // self.word_width

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise IndexError(f"address {address} out of range [0, {self.size_words})")

    def _cell(self, bit_index: int) -> Cell1T1J:
        """Materialize (and cache) the cell for one bit, syncing its state."""
        cell = self._cells.get(bit_index)
        if cell is None:
            mtj = self.population.device(bit_index)
            transistor = FixedResistanceTransistor(float(self.population.r_tr[bit_index]))
            cell = Cell1T1J(mtj, transistor)
            self._cells[bit_index] = cell
        cell.state = MTJState.from_bit(int(self._states[bit_index]))
        return cell

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Store ``value`` (``word_width`` bits, LSB first) at ``address``."""
        self._check_address(address)
        if not 0 <= value < (1 << self.word_width):
            raise ValueError(f"value {value} does not fit in {self.word_width} bits")
        base = address * self.word_width
        for offset in range(self.word_width):
            self._states[base + offset] = (value >> offset) & 1

    def read_word(
        self,
        address: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Read the word at ``address`` through ``scheme``.

        The scheme may mutate cell state (destructive reads); the array's
        state tracks whatever the scheme leaves behind.  Metastable bits
        resolve to 0.
        """
        self._check_address(address)
        base = address * self.word_width
        value = 0
        for offset in range(self.word_width):
            result = self.read_bit(base + offset, scheme, rng)
            bit = result.bit if result.bit is not None else 0
            value |= bit << offset
        return value

    def read_bit(
        self,
        bit_index: int,
        scheme: SensingScheme,
        rng: Optional[np.random.Generator] = None,
    ) -> ReadResult:
        """Read one cell through ``scheme`` and sync the array state."""
        if not 0 <= bit_index < self.size_bits:
            raise IndexError(f"bit {bit_index} out of range [0, {self.size_bits})")
        cell = self._cell(bit_index)
        result = scheme.read(cell, rng)
        self._states[bit_index] = cell.stored_bit
        return result

    def stored_bits(self) -> np.ndarray:
        """Ground-truth copy of all stored bits."""
        return self._states.copy()

    # ------------------------------------------------------------------
    # Bulk analysis
    # ------------------------------------------------------------------
    def margin_survey(self, **monte_carlo_kwargs):
        """Closed-form per-bit margins of all three schemes (delegates to
        :func:`repro.array.montecarlo.run_margin_monte_carlo`)."""
        return run_margin_monte_carlo(self.population, **monte_carlo_kwargs)

    def failing_bits(
        self,
        scheme_name: str,
        required_margin: float = 8.0e-3,
        **monte_carlo_kwargs,
    ) -> List[int]:
        """Indices of bits the named scheme cannot read reliably."""
        margins = self.margin_survey(**monte_carlo_kwargs)[scheme_name]
        return list(np.nonzero(margins.fail_mask(required_margin))[0])
