"""Array organization: banks, decoders and read scheduling.

Models the chip-level consequences of the scheme choice: a destructive
self-reference read occupies its bank for the whole
read–erase–read–write-back sequence (and its write pulses draw the write
driver), so a multi-bank memory built on it sustains far less read
bandwidth per watt than one built on the nondestructive scheme.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.core.cell import Cell1T1J
from repro.errors import ConfigurationError
from repro.timing.energy import scheme_read_energy
from repro.timing.latency import (
    LatencyBreakdown,
    TimingConfig,
    destructive_read_latency,
    nondestructive_read_latency,
)

__all__ = ["ArrayOrganization", "BankThroughput", "bank_throughput"]


@dataclasses.dataclass(frozen=True)
class ArrayOrganization:
    """Physical organization of an STT-RAM macro.

    Attributes
    ----------
    banks:
        Independently-addressable banks (reads to different banks overlap).
    rows / columns:
        Cells per bank; ``columns`` sense amplifiers fire in parallel, so
        one bank access reads a ``columns``-bit page.
    """

    banks: int = 4
    rows: int = 128
    columns: int = 128

    def __post_init__(self) -> None:
        if self.banks < 1 or self.rows < 1 or self.columns < 1:
            raise ConfigurationError("organization dimensions must be >= 1")

    @property
    def bits(self) -> int:
        """Total capacity [bits]."""
        return self.banks * self.rows * self.columns

    @property
    def row_address_bits(self) -> int:
        """Width of the row decoder input."""
        return max(1, math.ceil(math.log2(self.rows)))

    @property
    def bank_address_bits(self) -> int:
        """Width of the bank select."""
        return max(1, math.ceil(math.log2(self.banks)))

    def decode(self, address: int) -> Tuple[int, int]:
        """Split a page address into (bank, row)."""
        pages = self.banks * self.rows
        if not 0 <= address < pages:
            raise IndexError(f"page address {address} out of range [0, {pages})")
        return address % self.banks, address // self.banks


@dataclasses.dataclass(frozen=True)
class BankThroughput:
    """Sustained read characteristics of one organization + scheme."""

    scheme: str
    organization: ArrayOrganization
    page_latency: float       #: one bank access [s]
    page_bits: int            #: bits delivered per access
    read_bandwidth: float     #: all banks streaming [bit/s]
    read_power: float         #: array power at full streaming [W]
    energy_per_bit: float     #: [J/bit]


def bank_throughput(
    cell: Cell1T1J,
    organization: ArrayOrganization,
    breakdown: LatencyBreakdown,
) -> BankThroughput:
    """Sustained read bandwidth and power for a given scheme's latency.

    Each bank streams back-to-back page reads; ``banks`` of them overlap
    perfectly (no shared-bus modelling — this is the array-core limit).
    Energy scales with the ``columns`` cells sensed per access.
    """
    energy = scheme_read_energy(cell, breakdown)
    page_latency = breakdown.total
    page_bits = organization.columns
    bandwidth = organization.banks * page_bits / page_latency
    power = organization.banks * page_bits * energy.total / page_latency
    return BankThroughput(
        scheme=breakdown.scheme,
        organization=organization,
        page_latency=page_latency,
        page_bits=page_bits,
        read_bandwidth=bandwidth,
        read_power=power,
        energy_per_bit=energy.total,
    )


def throughput_comparison(
    cell: Cell1T1J,
    organization: ArrayOrganization = ArrayOrganization(),
    i_read2: float = 200e-6,
    beta_destructive: float = 1.22,
    beta_nondestructive: float = 2.13,
    config: TimingConfig = None,
) -> Tuple[BankThroughput, BankThroughput]:
    """(destructive, nondestructive) array-level read characteristics."""
    destructive = bank_throughput(
        cell,
        organization,
        destructive_read_latency(cell, i_read2, beta_destructive, config),
    )
    nondestructive = bank_throughput(
        cell,
        organization,
        nondestructive_read_latency(cell, i_read2, beta_nondestructive, config),
    )
    return destructive, nondestructive
