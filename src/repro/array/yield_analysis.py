"""Yield and margin-distribution statistics.

Turns raw per-bit margins into the quantities the paper reports: fail-bit
fractions at the sense-amp window (Fig. 11's pass/fail split), margin
distribution moments, and worst-case/percentile margins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.array.montecarlo import MonteCarloMargins, SchemeMargins
from repro.errors import ConfigurationError

__all__ = ["MarginStatistics", "YieldReport", "analyze_margins"]


@dataclasses.dataclass(frozen=True)
class MarginStatistics:
    """Distribution statistics of one scheme's per-bit binding margins."""

    scheme: str
    bits: int
    fail_count: int
    fail_fraction: float
    yield_fraction: float
    mean_margin: float
    std_margin: float
    min_margin: float
    percentile_1: float  #: 1st-percentile binding margin [V]
    mean_sm0: float
    mean_sm1: float

    @property
    def sigma_margin(self) -> float:
        """How many sigmas the mean margin sits above zero (∞ for a
        variation-free population)."""
        if self.std_margin == 0.0:
            return float("inf")
        return self.mean_margin / self.std_margin


@dataclasses.dataclass(frozen=True)
class YieldReport:
    """Statistics of every scheme over one Monte-Carlo population."""

    required_margin: float
    statistics: Dict[str, MarginStatistics]

    def __getitem__(self, scheme: str) -> MarginStatistics:
        return self.statistics[scheme]

    def best_scheme(self) -> str:
        """Scheme with the highest yield (ties broken by mean margin)."""
        return max(
            self.statistics.values(),
            key=lambda s: (s.yield_fraction, s.mean_margin),
        ).scheme


def _statistics(margins: SchemeMargins, required_margin: float) -> MarginStatistics:
    binding = margins.min_margin
    fails = int(np.count_nonzero(binding <= required_margin))
    bits = binding.size
    return MarginStatistics(
        scheme=margins.scheme,
        bits=bits,
        fail_count=fails,
        fail_fraction=fails / bits,
        yield_fraction=1.0 - fails / bits,
        mean_margin=float(np.mean(binding)),
        std_margin=float(np.std(binding)),
        min_margin=float(np.min(binding)),
        percentile_1=float(np.percentile(binding, 1.0)),
        mean_sm0=float(np.mean(margins.sm0)),
        mean_sm1=float(np.mean(margins.sm1)),
    )


def analyze_margins(
    monte_carlo: MonteCarloMargins, required_margin: float = 8.0e-3
) -> YieldReport:
    """Summarize a Monte-Carlo margin run at the given sense-amp window
    (paper: 8 mV)."""
    if required_margin < 0.0:
        raise ConfigurationError("required_margin must be non-negative")
    return YieldReport(
        required_margin=required_margin,
        statistics={
            name: _statistics(margins, required_margin)
            for name, margins in monte_carlo.schemes.items()
        },
    )
