"""The 16kb test-chip experiment (paper §V, Fig. 11).

The paper fabricated a 16kb STT-RAM test chip (TSMC 0.13 µm, 128 cells per
bit line), measured every bit's sense margin under the three schemes, and
found: with the auto-zero sense amplifiers needing about 8 mV, about 1% of
bits fail under conventional (shared-reference) sensing, while **both**
self-reference schemes read every bit correctly.

Our substitute: a Monte-Carlo population with the calibrated device, the
paper's motivating 8%-per-0.1 Å oxide sensitivity, a shared-reference error
for the conventional scheme (its reference comes from reference MTJ cells
subject to the same variation — the error source self-referencing removes),
read-current ratio and divider ratio *trimmed at test* (the paper: "the
current ratio β of the read-current driver can be adjusted in the testing
stage to compensate the voltage ratio α variation"), and the 8 mV pass/fail
window.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.array.array import STTRAMArray
from repro.array.montecarlo import MonteCarloMargins, run_margin_monte_carlo
from repro.array.yield_analysis import YieldReport, analyze_margins
from repro.calibration.fit import calibrate
from repro.calibration.targets import PAPER_TARGETS, PaperTargets
from repro.core.batch import BatchReadResult
from repro.core.conventional import ConventionalSensing
from repro.core.destructive import DestructiveSelfReference
from repro.core.nondestructive import NondestructiveSelfReference
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError

__all__ = [
    "TESTCHIP_VARIATION",
    "TestChip",
    "TestChipResult",
    "BehavioralReadSummary",
    "run_testchip_experiment",
    "run_testchip_behavioral",
]

#: Variation profile of the measured test chip, tuned so the simulated chip
#: reproduces the paper's Fig. 11 outcome: MTJ variation (σ(t_ox) = 0.06 Å
#: ≈ 5% resistance sigma plus area/TMR mismatch) and a 25 mV shared-reference
#: error (the conventional reference is generated from reference MTJ cells
#: subject to the same variation) give ~1% conventional fails, while β/α are
#: trimmed at test (the paper adjusts β "in testing stage") so both
#: self-reference schemes read every bit.
TESTCHIP_VARIATION = VariationModel(
    sigma_tox_angstrom=0.06,
    sigma_area_frac=0.02,
    sigma_tmr_frac=0.015,
    sigma_rtr_frac=0.02,
    sigma_alpha_frac=0.001,
    sigma_beta_frac=0.001,
    sigma_sa_offset=1.0e-3,
    sigma_vref=0.025,
)


@dataclasses.dataclass(frozen=True)
class TestChip:
    """Organization of the measured chip."""

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    rows: int = 128
    columns: int = 128
    variation: VariationModel = TESTCHIP_VARIATION
    targets: PaperTargets = PAPER_TARGETS

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ConfigurationError("chip must have positive dimensions")

    @property
    def bits(self) -> int:
        """Total bit count (paper: 16384)."""
        return self.rows * self.columns


@dataclasses.dataclass(frozen=True)
class TestChipResult:
    """Everything Fig. 11 plots, plus the yield summary."""

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    chip: TestChip
    population: CellPopulation
    margins: MonteCarloMargins
    report: YieldReport

    @property
    def conventional_fail_fraction(self) -> float:
        """Fraction of bits conventional sensing cannot read (paper: ~1%)."""
        return self.report["conventional"].fail_fraction

    @property
    def self_reference_all_pass(self) -> bool:
        """True when both self-reference schemes read every bit — the
        paper's headline measurement."""
        return (
            self.report["destructive"].fail_count == 0
            and self.report["nondestructive"].fail_count == 0
        )

    def scatter(self, scheme: str):
        """(SM0, SM1) per-bit arrays [V] — the axes of paper Fig. 11."""
        margins = self.margins[scheme]
        return margins.sm0, margins.sm1


def run_testchip_experiment(
    chip: Optional[TestChip] = None,
    rng: Optional[np.random.Generator] = None,
    required_margin: Optional[float] = None,
    reference_pairs: Optional[int] = None,
) -> TestChipResult:
    """Run the full Fig. 11 experiment on a simulated chip.

    Uses the calibrated device, the chip's variation profile, and the two
    schemes at their paper design points (β from the calibration's
    optimization, α = 0.5).

    ``reference_pairs``: when given, the conventional scheme's per-column
    reference error is *generated physically* — one reference column of
    that many averaged MTJ pairs per array column — instead of using the
    ``sigma_vref`` Gaussian (same mechanism, built from actual sampled
    reference cells; see :mod:`repro.core.reference`).
    """
    if chip is None:
        chip = TestChip()
    if rng is None:
        rng = np.random.default_rng(2010)  # paper year; reproducible default
    if required_margin is None:
        required_margin = chip.targets.sense_amp_window

    calibration = calibrate(chip.targets)
    population = CellPopulation.sample(
        size=chip.bits,
        variation=chip.variation,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
        r_tr_nominal=chip.targets.r_transistor,
    )
    if reference_pairs is not None:
        from repro.core.reference import build_reference_column

        reference_pool = CellPopulation.sample(
            size=max(4 * reference_pairs * chip.columns, 1024),
            variation=chip.variation,
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
            r_tr_nominal=chip.targets.r_transistor,
        )
        column_errors = np.array([
            build_reference_column(
                reference_pool, reference_pairs, chip.targets.i_read_max, rng
            ).error
            for _ in range(chip.columns)
        ])
        # Row-major bit layout: bit index -> column = index % columns.
        population.vref_error = column_errors[np.arange(chip.bits) % chip.columns]
    margins = run_margin_monte_carlo(
        population,
        i_read2=chip.targets.i_read_max,
        beta_destructive=calibration.beta_destructive,
        beta_nondestructive=calibration.beta_nondestructive,
        alpha=chip.targets.alpha,
        include_sa_offset=False,  # the 8 mV window already budgets offset
    )
    report = analyze_margins(margins, required_margin)
    return TestChipResult(chip=chip, population=population, margins=margins, report=report)


@dataclasses.dataclass(frozen=True)
class BehavioralReadSummary:
    """One scheme's behavioural read of every chip bit.

    Where :class:`TestChipResult` reports *closed-form* margins, this is the
    outcome of actually performing the reads through the batch kernel:
    sensed bits, misreads against the written pattern, metastable
    comparisons, and (for the destructive scheme) bits whose stored value
    the read destroyed.
    """

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    scheme: str
    batch: BatchReadResult

    @property
    def bits(self) -> int:
        """Number of bits read."""
        return self.batch.size

    @property
    def misreads(self) -> int:
        """Reads returning the wrong (or no) value."""
        return self.batch.error_count

    @property
    def misread_fraction(self) -> float:
        """``misreads / bits`` — the behavioural analogue of the
        closed-form fail fraction."""
        return self.batch.error_fraction

    @property
    def metastable_events(self) -> int:
        """Comparisons inside the sense-amplifier window."""
        return self.batch.metastable_count

    @property
    def data_destroyed(self) -> int:
        """Bits whose stored value the read itself damaged."""
        return self.batch.destroyed_count


def run_testchip_behavioral(
    chip: Optional[TestChip] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, BehavioralReadSummary]:
    """Read every bit of the simulated chip through all three schemes.

    The chip is built exactly as :func:`run_testchip_experiment` builds it
    (calibrated device, test-chip variation profile, paper design points),
    filled with a random pattern, and each scheme reads the full 16kb in
    one :meth:`~repro.array.array.STTRAMArray.read_all` kernel pass — the
    behavioural cross-check of the Fig. 11 closed-form margins.  The
    pattern is rewritten between schemes so each starts from the same data.
    """
    if chip is None:
        chip = TestChip()
    if rng is None:
        rng = np.random.default_rng(2010)  # paper year; reproducible default

    calibration = calibrate(chip.targets)
    population = CellPopulation.sample(
        size=chip.bits,
        variation=chip.variation,
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
        r_tr_nominal=chip.targets.r_transistor,
    )
    array = STTRAMArray(population)
    pattern = rng.integers(0, 2, chip.bits).astype(np.uint8)

    schemes = {
        "conventional": ConventionalSensing(
            i_read=chip.targets.i_read_max,
            nominal_cell=calibration.cell(chip.targets.r_transistor),
        ),
        "destructive": DestructiveSelfReference(
            i_read2=chip.targets.i_read_max, beta=calibration.beta_destructive
        ),
        "nondestructive": NondestructiveSelfReference(
            i_read2=chip.targets.i_read_max, beta=calibration.beta_nondestructive
        ),
    }
    summaries: Dict[str, BehavioralReadSummary] = {}
    for name, scheme in schemes.items():
        array._states[:] = pattern
        # The conventional scheme's shared reference carries each bit's
        # column mismatch — the error source self-referencing removes.
        kwargs = (
            {"v_ref_error": population.vref_error} if name == "conventional" else {}
        )
        batch = array.read_all(scheme, rng, **kwargs)
        summaries[name] = BehavioralReadSummary(scheme=name, batch=batch)
    return summaries
