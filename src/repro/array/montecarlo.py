"""Vectorized Monte-Carlo sense-margin computation.

Every bit of a sampled :class:`~repro.device.variation.CellPopulation` gets
its per-bit ``(SM0, SM1)`` under each sensing scheme, computed with the
closed-form margin equations (no per-bit Python loop) — this is what turns
the paper's 16kb silicon measurement into a tractable numpy experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.margins import (
    population_conventional_margins,
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError

__all__ = ["SchemeMargins", "MonteCarloMargins", "run_margin_monte_carlo"]


@dataclasses.dataclass(frozen=True)
class SchemeMargins:
    """Per-bit margins of one scheme over a population."""

    scheme: str
    sm0: np.ndarray
    sm1: np.ndarray

    @property
    def min_margin(self) -> np.ndarray:
        """Per-bit binding margin ``min(SM0, SM1)``."""
        return np.minimum(self.sm0, self.sm1)

    def fail_mask(self, required_margin: float = 8.0e-3) -> np.ndarray:
        """Boolean mask of bits whose binding margin misses the window."""
        return self.min_margin <= required_margin

    def fail_fraction(self, required_margin: float = 8.0e-3) -> float:
        """Fraction of unreadable bits at the given sense-amp window."""
        return float(np.mean(self.fail_mask(required_margin)))


@dataclasses.dataclass(frozen=True)
class MonteCarloMargins:
    """Margins of all requested schemes over one sampled population."""

    population: CellPopulation
    schemes: Dict[str, SchemeMargins]

    def __getitem__(self, scheme: str) -> SchemeMargins:
        return self.schemes[scheme]

    @property
    def size(self) -> int:
        """Number of Monte-Carlo bits."""
        return self.population.size


def run_margin_monte_carlo(
    population: CellPopulation,
    i_read2: float = 200e-6,
    beta_destructive: float = 1.22,
    beta_nondestructive: float = 2.13,
    alpha: float = 0.5,
    v_ref: Optional[float] = None,
    include_sa_offset: bool = True,
) -> MonteCarloMargins:
    """Compute per-bit margins of all three schemes over ``population``.

    Parameters
    ----------
    v_ref:
        Shared reference for the conventional scheme; defaults to the
        midpoint of the *nominal* bit's low/high bit-line voltages at
        ``i_read2`` — exactly how a designer without per-bit knowledge
        would place it.
    include_sa_offset:
        Subtract each bit's sampled sense-amp offset from both margins
        (an offset eats margin on one side and donates on the other; the
        binding margin always loses).
    """
    if population.size == 0:
        raise ConfigurationError("population is empty")
    nominal = population.nominal
    r_tr_nominal = float(np.median(population.r_tr))
    if v_ref is None:
        r_low_nom = nominal.r_low - nominal.dr_low_max * population.rolloff_low.fraction(
            i_read2 / nominal.i_read_max
        )
        r_high_nom = nominal.r_high - nominal.dr_high_max * population.rolloff_high.fraction(
            i_read2 / nominal.i_read_max
        )
        v_ref = 0.5 * i_read2 * (r_low_nom + r_high_nom + 2.0 * r_tr_nominal)

    conventional = population_conventional_margins(population, i_read2, v_ref)
    destructive = population_destructive_margins(
        population, i_read2, beta_destructive
    )
    nondestructive = population_nondestructive_margins(
        population, i_read2, beta_nondestructive, alpha=alpha
    )

    def pack(name: str, sm0: np.ndarray, sm1: np.ndarray) -> SchemeMargins:
        if include_sa_offset:
            offset = np.abs(population.sa_offset)
            sm0 = sm0 - offset
            sm1 = sm1 - offset
        return SchemeMargins(name, sm0, sm1)

    return MonteCarloMargins(
        population=population,
        schemes={
            "conventional": pack("conventional", *conventional),
            "destructive": pack("destructive", *destructive),
            "nondestructive": pack("nondestructive", *nondestructive),
        },
    )
