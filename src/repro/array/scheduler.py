"""Bank-conflict read scheduling: discrete-event queueing simulation.

The destructive scheme's longer bank-occupancy time (erase + write-back)
does more damage than its raw latency suggests once requests queue behind
busy banks.  This module keeps the historical entry point —
:func:`simulate_read_queue`, Poisson read arrivals, random bank targets,
FCFS per bank — but the hand-rolled service loop it used to contain now
lives in :mod:`repro.service`: the function draws the same RNG streams in
the same order, wraps them into :class:`~repro.service.workload.Request`
records, and runs them through an engine-driven
:class:`~repro.service.controller.MemoryController` under the ``fcfs``
policy.  Results are bit-identical to the pre-refactor loop for a fixed
seed (the regression test pins exact values), because the controller
performs the same float operations — ``start = max(arrival, bank_free)``,
``finish = start + service_time`` — in the same per-request order.

For richer workloads (bursty arrivals, Zipf addressing, writes, caching,
batching, fault-backed reads), use :mod:`repro.service` directly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.service.controller import ControllerConfig, FCFS, MemoryController
from repro.service.engine import DiscreteEventEngine
from repro.service.workload import Request

__all__ = ["QueueingResult", "simulate_read_queue"]


@dataclasses.dataclass(frozen=True)
class QueueingResult:
    """Outcome of one queueing simulation."""

    service_time: float         #: per-access bank occupancy [s]
    offered_load: float         #: arrival rate x service time / banks
    mean_latency: float         #: mean request completion latency [s]
    p99_latency: float          #: 99th-percentile latency [s]
    mean_queue_delay: float     #: mean waiting time before service [s]

    @property
    def slowdown(self) -> float:
        """Mean latency relative to the unloaded service time."""
        return self.mean_latency / self.service_time


def simulate_read_queue(
    service_time: float,
    arrival_rate: float,
    banks: int = 4,
    requests: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> QueueingResult:
    """Simulate ``requests`` Poisson read arrivals over ``banks`` banks.

    Each request targets a uniformly random bank and occupies it for
    ``service_time`` (the scheme's full read — for the destructive scheme
    that includes the erase and write-back).  FCFS within a bank; banks are
    independent.
    """
    if service_time <= 0.0 or arrival_rate <= 0.0:
        raise ConfigurationError("service_time and arrival_rate must be positive")
    if banks < 1 or requests < 1:
        raise ConfigurationError("banks and requests must be >= 1")
    if rng is None:
        rng = np.random.default_rng()

    offered = arrival_rate * service_time / banks
    if offered >= 1.0:
        raise ConfigurationError(
            f"offered load {offered:.2f} >= 1: the queue is unstable"
        )

    # Same draws, same order, as the historical loop: arrival gaps first,
    # then bank targets.  The target doubles as the address, so the
    # controller's modulo interleaving lands each request on its target.
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, requests))
    targets = rng.integers(0, banks, requests)
    stream = tuple(
        Request(
            request_id=index,
            time=float(arrivals[index]),
            address=int(targets[index]),
        )
        for index in range(requests)
    )

    config = ControllerConfig(
        read_time=service_time, write_time=service_time, banks=banks
    )
    engine = DiscreteEventEngine()
    controller = MemoryController(engine, config, policy=FCFS)
    controller.submit_all(stream)
    engine.run()

    # Reassemble per-request arrays in arrival (request_id) order so the
    # pairwise summation inside np.mean sees the exact sequence the old
    # loop produced — means stay byte-identical, not merely close.
    latencies = np.empty(requests)
    queue_delays = np.empty(requests)
    for completed in controller.completions:
        index = completed.request.request_id
        latencies[index] = completed.latency
        queue_delays[index] = completed.queue_delay

    return QueueingResult(
        service_time=service_time,
        offered_load=float(offered),
        mean_latency=float(np.mean(latencies)),
        p99_latency=float(np.percentile(latencies, 99.0)),
        mean_queue_delay=float(np.mean(queue_delays)),
    )
