"""Bank-conflict read scheduling: discrete-event queueing simulation.

The destructive scheme's longer bank-occupancy time (erase + write-back)
does more damage than its raw latency suggests once requests queue behind
busy banks.  This module runs a simple discrete-event simulation — Poisson
read arrivals, random bank targets, FCFS per bank — and reports the mean
and tail request latency per scheme as a function of offered load.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QueueingResult", "simulate_read_queue"]


@dataclasses.dataclass(frozen=True)
class QueueingResult:
    """Outcome of one queueing simulation."""

    service_time: float         #: per-access bank occupancy [s]
    offered_load: float         #: arrival rate x service time / banks
    mean_latency: float         #: mean request completion latency [s]
    p99_latency: float          #: 99th-percentile latency [s]
    mean_queue_delay: float     #: mean waiting time before service [s]

    @property
    def slowdown(self) -> float:
        """Mean latency relative to the unloaded service time."""
        return self.mean_latency / self.service_time


def simulate_read_queue(
    service_time: float,
    arrival_rate: float,
    banks: int = 4,
    requests: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> QueueingResult:
    """Simulate ``requests`` Poisson read arrivals over ``banks`` banks.

    Each request targets a uniformly random bank and occupies it for
    ``service_time`` (the scheme's full read — for the destructive scheme
    that includes the erase and write-back).  FCFS within a bank; banks are
    independent.
    """
    if service_time <= 0.0 or arrival_rate <= 0.0:
        raise ConfigurationError("service_time and arrival_rate must be positive")
    if banks < 1 or requests < 1:
        raise ConfigurationError("banks and requests must be >= 1")
    if rng is None:
        rng = np.random.default_rng()

    offered = arrival_rate * service_time / banks
    if offered >= 1.0:
        raise ConfigurationError(
            f"offered load {offered:.2f} >= 1: the queue is unstable"
        )

    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, requests))
    targets = rng.integers(0, banks, requests)
    bank_free_at = np.zeros(banks)
    latencies = np.empty(requests)
    queue_delays = np.empty(requests)

    for index in range(requests):
        t_arrive = arrivals[index]
        bank = targets[index]
        start = max(t_arrive, bank_free_at[bank])
        finish = start + service_time
        bank_free_at[bank] = finish
        latencies[index] = finish - t_arrive
        queue_delays[index] = start - t_arrive

    return QueueingResult(
        service_time=service_time,
        offered_load=float(offered),
        mean_latency=float(np.mean(latencies)),
        p99_latency=float(np.percentile(latencies, 99.0)),
        mean_queue_delay=float(np.mean(queue_delays)),
    )
