"""Compatibility shim: the production test flow moved to
:mod:`repro.prodtest.flow`.

The die-level measure → trim → repair → ECC → ship flow grew into the
wafer-scale production test subsystem (:mod:`repro.prodtest`); this module
re-exports the original surface so existing imports keep working.
"""

from repro.prodtest.flow import (
    DieResult,
    TestFlowConfig,
    run_test_flow,
    yield_curve,
)

__all__ = ["DieResult", "TestFlowConfig", "run_test_flow", "yield_curve"]
