"""Wafer-scale production test and trim.

The paper's test-stage β compensation only matters if a production flow
can actually apply it: this package is that flow, end to end, at wafer
scale.  It sits between the fault/recovery layer (whose fault models and
ECC it consumes) and the serving layer (whose per-die retry budgets and
trim codes it provisions):

* :mod:`~repro.prodtest.march` — march-test engine (MATS+, March C-, and
  a disturb-aware STT-RAM march) executed with a deterministic
  margin-scan read mode, classifying failures per the STT-MRAM fault
  taxonomy and scoring coverage against injected ground truth;
* :mod:`~repro.prodtest.characterize` — per-die binary-search trim over
  the discrete trim-code lattice (β for the self-referenced schemes,
  ``V_REF`` for conventional sensing) against a repair-aware pass/fail
  shmoo, plus sense-current and retry-budget provisioning;
* :mod:`~repro.prodtest.wafer` — wafer Monte-Carlo driver on the reserved
  ``(seed, prodtest)`` RNG stream: die-level systematics over within-die
  variation, fault strike, then test → characterize → repair → ECC →
  ship per die, with a vectorized engine bit-exact against the per-die
  reference loop;
* :mod:`~repro.prodtest.report` — shipping yield, test time, and
  cost-per-good-bit economics per sensing scheme, published through
  :mod:`repro.obs` gauges;
* :mod:`~repro.prodtest.flow` — the original single-die flow (re-homed
  from ``repro.array.testflow``) and the β-trim skew experiment.

Example — test a small wafer and read off the economics::

    from repro.prodtest import WaferConfig, build_wafer, run_wafer, summarize

    result = run_wafer(build_wafer(WaferConfig(dies=256)))
    summary = summarize(result)
    print(f"yield {summary.ship_rate:.1%}, "
          f"{summary.mean_test_seconds * 1e3:.2f} ms/die, "
          f"coverage {summary.coverage['overall']:.1%}")
"""

from repro.prodtest.characterize import (
    CharacterizeConfig,
    CharacterizeResult,
    TrimRecord,
    characterize_dies,
    knob_bounds,
)
from repro.prodtest.flow import (
    DieResult,
    TestFlowConfig,
    run_test_flow,
    trim_skew_experiment,
    yield_curve,
)
from repro.prodtest.march import (
    DISTURB_THRESHOLD,
    MARCH_C_MINUS,
    MARCH_STTRAM,
    MARCH_TESTS,
    MATS_PLUS,
    MarchElement,
    MarchResult,
    MarchTest,
    march_seconds,
    run_march_test,
)
from repro.prodtest.report import (
    CostModel,
    WaferSummary,
    compare_schemes,
    publish_wafer_report,
    summarize,
)
from repro.prodtest.wafer import (
    Wafer,
    WaferConfig,
    WaferResult,
    build_wafer,
    default_die_faults,
    run_wafer,
)

__all__ = [
    "MarchElement",
    "MarchTest",
    "MarchResult",
    "MATS_PLUS",
    "MARCH_C_MINUS",
    "MARCH_STTRAM",
    "MARCH_TESTS",
    "DISTURB_THRESHOLD",
    "run_march_test",
    "march_seconds",
    "CharacterizeConfig",
    "CharacterizeResult",
    "TrimRecord",
    "characterize_dies",
    "knob_bounds",
    "WaferConfig",
    "Wafer",
    "WaferResult",
    "build_wafer",
    "run_wafer",
    "default_die_faults",
    "CostModel",
    "WaferSummary",
    "summarize",
    "compare_schemes",
    "publish_wafer_report",
    "DieResult",
    "TestFlowConfig",
    "run_test_flow",
    "yield_curve",
    "trim_skew_experiment",
]
