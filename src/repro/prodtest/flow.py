"""Single-die production test flow: measure → trim → repair → ECC → ship.

This is the die-level flow the wafer driver generalizes — re-homed here
from ``repro.array.testflow`` (which remains as a compatibility shim) so
the whole production-test stack lives in one layer:

1. **measure** — per-bit margins of the die (Monte-Carlo stand-in for the
   tester's margin scan);
2. **trim** — pick the die's β maximizing the worst-bit margin (the
   paper's test-stage knob);
3. **repair** — allocate spare rows/columns over the remaining fail map;
4. **ECC screen** — any residual fails must sit at most one per SECDED
   word;
5. **ship/scrap** — the die ships iff steps 3–4 leave no uncovered fail.

:func:`run_test_flow` executes the flow for one die; :func:`yield_curve`
Monte-Carlos dies across a variation sweep, and
:func:`trim_skew_experiment` quantifies the β trim against systematic
divider skew — both previously private to the ablation benchmarks, now
part of the subsystem surface they belong to.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.array.repair import RepairPlan, allocate_repair
from repro.calibration.fit import CalibrationResult, calibrate
from repro.core.margins import population_nondestructive_margins
from repro.core.trim import TrimResult, trim_population_beta
from repro.device.variation import CellPopulation, VariationModel
from repro.errors import ConfigurationError

__all__ = [
    "DieResult",
    "TestFlowConfig",
    "run_test_flow",
    "yield_curve",
    "trim_skew_experiment",
]


@dataclasses.dataclass(frozen=True)
class TestFlowConfig:
    """Knobs of the production test flow."""

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    rows: int = 64
    columns: int = 64
    spare_rows: int = 2
    spare_columns: int = 2
    word_cells: int = 72          #: SECDED codeword span (row-major)
    required_margin: float = 8.0e-3
    trim: bool = True

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ConfigurationError("die dimensions must be positive")
        if self.spare_rows < 0 or self.spare_columns < 0:
            raise ConfigurationError("spare counts must be non-negative")
        if self.word_cells < 1:
            raise ConfigurationError("word_cells must be >= 1")

    @property
    def bits(self) -> int:
        """Cells per die."""
        return self.rows * self.columns


@dataclasses.dataclass(frozen=True)
class DieResult:
    """Outcome of testing one die."""

    ships: bool
    fails_before_trim: int
    fails_after_trim: int
    trim: Optional[TrimResult]
    repair: RepairPlan
    ecc_covered_fails: int     #: residual fails absorbed by SECDED
    uncovered_fails: int       #: fails nothing could cover (scrap cause)


def _fail_mask(population: CellPopulation, beta: float, config: TestFlowConfig):
    sm0, sm1 = population_nondestructive_margins(population, 200e-6, beta)
    return np.minimum(sm0, sm1) <= config.required_margin


def run_test_flow(
    population: CellPopulation,
    config: Optional[TestFlowConfig] = None,
    calibration: Optional[CalibrationResult] = None,
) -> DieResult:
    """Run the full test flow on one die's sampled population."""
    if config is None:
        config = TestFlowConfig()
    if population.size != config.bits:
        raise ConfigurationError(
            f"population of {population.size} bits does not match the "
            f"{config.rows}x{config.columns} die"
        )
    if calibration is None:
        calibration = calibrate()

    nominal_beta = calibration.beta_nondestructive
    fails_before = int(_fail_mask(population, nominal_beta, config).sum())

    trim_result: Optional[TrimResult] = None
    beta = nominal_beta
    if config.trim:
        trim_result = trim_population_beta(
            population, required_margin=config.required_margin
        )
        beta = trim_result.beta
    mask = _fail_mask(population, beta, config)
    fails_after = int(mask.sum())

    plan = allocate_repair(
        mask, config.rows, config.columns, config.spare_rows, config.spare_columns
    )

    # Residual fails after repair: reconstruct which bits the spares covered.
    grid = mask.reshape(config.rows, config.columns).copy()
    for row in plan.spare_rows_used:
        grid[row, :] = False
    for column in plan.spare_columns_used:
        grid[:, column] = False
    residual = grid.reshape(-1)
    usable = (residual.size // config.word_cells) * config.word_cells
    per_word = residual[:usable].reshape(-1, config.word_cells).sum(axis=1)
    tail = residual[usable:]
    ecc_covered = int((per_word == 1).sum()) + int(tail.sum() == 1)
    uncovered = int((per_word >= 2).sum()) + (int(tail.sum()) if tail.sum() >= 2 else 0)

    return DieResult(
        ships=(uncovered == 0),
        fails_before_trim=fails_before,
        fails_after_trim=fails_after,
        trim=trim_result,
        repair=plan,
        ecc_covered_fails=ecc_covered,
        uncovered_fails=uncovered,
    )


def yield_curve(
    variation_scales,
    dies_per_point: int = 8,
    config: Optional[TestFlowConfig] = None,
    base_variation: Optional[VariationModel] = None,
    seed: int = 42,
) -> List[dict]:
    """Monte-Carlo the shipping yield across a variation sweep.

    Returns one record per scale: ``{"scale", "yield", "mean_fails",
    "mean_spares"}``.
    """
    from repro.array.testchip import TESTCHIP_VARIATION

    if dies_per_point < 1:
        raise ConfigurationError("dies_per_point must be >= 1")
    if config is None:
        config = TestFlowConfig()
    if base_variation is None:
        base_variation = TESTCHIP_VARIATION
    calibration = calibrate()
    rng = np.random.default_rng(seed)

    records = []
    for scale in variation_scales:
        variation = base_variation.scaled(float(scale))
        shipped = 0
        fails = 0
        spares = 0
        for _ in range(dies_per_point):
            population = CellPopulation.sample(
                config.bits,
                variation,
                params=calibration.params,
                rolloff_high=calibration.rolloff_high(),
                rolloff_low=calibration.rolloff_low(),
                rng=rng,
            )
            die = run_test_flow(population, config, calibration)
            shipped += int(die.ships)
            fails += die.fails_after_trim
            spares += die.repair.spares_used
        records.append(
            {
                "scale": float(scale),
                "yield": shipped / dies_per_point,
                "mean_fails": fails / dies_per_point,
                "mean_spares": spares / dies_per_point,
            }
        )
    return records


def trim_skew_experiment(
    calibration: Optional[CalibrationResult] = None,
    alpha_skews: Sequence[float] = (-0.06, -0.03, 0.0, +0.03, +0.06),
    bits: int = 2048,
    seed: int = 5,
) -> List[Tuple[float, float, TrimResult]]:
    """The paper's §V test-stage compensation, quantified per lot.

    For each systematic divider skew: sample a lot (fresh ``seed`` per
    skew so lots differ only by the skew), apply the skew, and report the
    worst-bit margin before and after the β trim as
    ``(skew, untrimmed_margin, trim_result)`` tuples.
    """
    if calibration is None:
        calibration = calibrate()
    results = []
    for skew in alpha_skews:
        rng = np.random.default_rng(seed)
        population = CellPopulation.sample(
            bits,
            VariationModel(sigma_alpha_frac=0.005, sigma_beta_frac=0.0),
            params=calibration.params,
            rolloff_high=calibration.rolloff_high(),
            rolloff_low=calibration.rolloff_low(),
            rng=rng,
        )
        population.alpha_deviation = population.alpha_deviation + skew
        sm0, sm1 = population_nondestructive_margins(
            population, 200e-6, calibration.beta_nondestructive
        )
        untrimmed = float(np.min(np.minimum(sm0, sm1)))
        trim = trim_population_beta(population)
        results.append((float(skew), untrimmed, trim))
    return results
