"""March-test engine: compiled address/op sequences with fault classification.

The STT-MRAM testing survey (arXiv 2001.05463) frames production test as
*march algorithms* — sequences of march elements, each an address sweep
applying the same read/write operations to every cell — whose read-back
failures are then diagnosed against the fault taxonomy.  Three algorithms
are provided:

* **MATS+** — ``⇕(w0); ⇑(r0,w1); ⇓(r1,w0)`` — the minimal industry
  screen.  Detects stuck-at behaviour and up-transitions but has no read
  after its final ``w0``, so a down-transition fault escapes it.
* **March C-** — ``⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)``
  — the classic coupling-fault march; detects both transition polarities.
* **March 1T1J** (disturb-aware STT-RAM variant) — March C- with the
  single reads of the ``r1`` elements replaced by *hammering* triple
  reads.  STT-RAM's read current is parallelizing, so a disturb-prone
  cell only loses its "1" after repeated reads without an intervening
  write — single-read marches never trip it.

The engine executes a march against an :class:`~repro.array.array.
STTRAMArray`'s cell population (typically after a
:class:`~repro.faults.injector.FaultInjector` pass) using the tester's
*margin-scan read mode*: the read decision is evaluated from the
closed-form per-bit sense margins plus the per-bit sense-amplifier offset,
mirroring :meth:`~repro.circuit.sense_amp.SenseAmplifier.compare_bits`
with no RNG (metastable bits stay unresolved and therefore fail).  This
read mode is fully deterministic and elementwise, which is what lets the
wafer driver run the identical march over 10⁵ dies in one vectorized pass,
bit-exact with a per-die loop.

Because no inter-cell coupling faults are modelled, the address order
inside an element (``⇑``/``⇓``) does not change any cell's outcome; the
engine therefore executes each operation across all cells at once.  The
compiled per-cell sequence a real tester would issue is available from
:meth:`MarchTest.compile`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.margins import (
    population_conventional_margins,
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError
from repro.faults.injector import FaultMap
from repro.faults.models import FaultKind

__all__ = [
    "MarchElement",
    "MarchTest",
    "MarchResult",
    "MATS_PLUS",
    "MARCH_C_MINUS",
    "MARCH_STTRAM",
    "MARCH_TESTS",
    "DISTURB_THRESHOLD",
    "run_march_test",
    "march_seconds",
]

_OPS = ("w0", "w1", "r0", "r1")

#: Reads-since-write count at which a disturb-prone cell loses its "1"
#: (see :class:`~repro.faults.models.ReadDisturbProneFault`).
DISTURB_THRESHOLD = 2

#: Per-operation tester time [s] by sensing scheme: the conventional read
#: is one voltage compare, the destructive self-reference read spans
#: erase + two reads + write-back, the nondestructive read two sampled
#: reads (paper Fig. 9 timing; representative production-tester numbers).
SCHEME_READ_SECONDS = {
    "conventional": 5.0e-9,
    "destructive": 40.0e-9,
    "nondestructive": 15.0e-9,
}
WRITE_SECONDS = 10.0e-9

#: Parametric screen thresholds, as multiples of the nominal resistances:
#: a cell whose *high* resistance sits below half the nominal low state is
#: shorted; one whose *low* resistance sits above 4x the nominal high
#: state is open.
_SHORT_FRACTION = 0.5
_OPEN_FACTOR = 4.0


@dataclasses.dataclass(frozen=True)
class MarchElement:
    """One march element: an address sweep applying ``ops`` to each cell.

    ``ascending`` is the sweep direction (``⇑`` vs ``⇓``).  With no
    coupling faults modelled the direction cannot change any outcome; it
    is kept so compiled sequences match the published algorithms.
    """

    ops: Tuple[str, ...]
    ascending: bool = True

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError("march element must apply at least one op")
        for op in self.ops:
            if op not in _OPS:
                raise ConfigurationError(
                    f"unknown march op {op!r}; expected one of {_OPS}"
                )

    def describe(self) -> str:
        """The element in march notation, e.g. ``⇑(r0,w1)``."""
        arrow = "⇑" if self.ascending else "⇓"
        return f"{arrow}({','.join(self.ops)})"


@dataclasses.dataclass(frozen=True)
class MarchTest:
    """A named march algorithm: an ordered tuple of march elements."""

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    name: str
    elements: Tuple[MarchElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ConfigurationError("march test must have at least one element")

    def describe(self) -> str:
        """The full algorithm in march notation."""
        return "; ".join(element.describe() for element in self.elements)

    @property
    def ops_per_cell(self) -> int:
        """Operations applied to each cell over the whole test."""
        return sum(len(element.ops) for element in self.elements)

    @property
    def reads_per_cell(self) -> int:
        """Read operations applied to each cell."""
        return sum(
            1 for element in self.elements for op in element.ops
            if op.startswith("r")
        )

    @property
    def writes_per_cell(self) -> int:
        """Write operations applied to each cell."""
        return self.ops_per_cell - self.reads_per_cell

    def operation_count(self, cells: int) -> int:
        """Total tester operations for a ``cells``-cell array."""
        return self.ops_per_cell * cells

    def compile(self, cells: int) -> Iterator[Tuple[str, int]]:
        """The compiled ``(op, address)`` sequence a tester would issue."""
        for element in self.elements:
            addresses = range(cells) if element.ascending else range(
                cells - 1, -1, -1
            )
            for address in addresses:
                for op in element.ops:
                    yield op, address


def _element(spec: str, ascending: bool = True) -> MarchElement:
    return MarchElement(tuple(spec.split(",")), ascending)


MATS_PLUS = MarchTest(
    "MATS+",
    (
        _element("w0"),
        _element("r0,w1"),
        _element("r1,w0", ascending=False),
    ),
)

MARCH_C_MINUS = MarchTest(
    "March C-",
    (
        _element("w0"),
        _element("r0,w1"),
        _element("r1,w0"),
        _element("r0,w1", ascending=False),
        _element("r1,w0", ascending=False),
        _element("r0"),
    ),
)

#: Disturb-aware STT-RAM march: March C- with hammering ``r1`` elements.
MARCH_STTRAM = MarchTest(
    "March 1T1J",
    (
        _element("w0"),
        _element("r0,w1"),
        _element("r1,r1,r1,w0"),
        _element("r0,w1", ascending=False),
        _element("r1,r1,r1,w0", ascending=False),
        _element("r0"),
    ),
)

MARCH_TESTS: Dict[str, MarchTest] = {
    "mats+": MATS_PLUS,
    "march-c-": MARCH_C_MINUS,
    "march-1t1j": MARCH_STTRAM,
}


def march_seconds(test: MarchTest, cells: int, scheme: str) -> float:
    """Tester wall-clock of one march run over a ``cells``-cell die [s]."""
    try:
        read_seconds = SCHEME_READ_SECONDS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected one of "
            f"{sorted(SCHEME_READ_SECONDS)}"
        ) from None
    return cells * (
        test.reads_per_cell * read_seconds
        + test.writes_per_cell * WRITE_SECONDS
    )


# ----------------------------------------------------------------------
# Margin-scan read mode
# ----------------------------------------------------------------------
def scheme_family(scheme) -> str:
    """``conventional`` / ``destructive`` / ``nondestructive`` from a
    scheme instance (classes carry names like "nondestructive
    self-reference"; the leading word identifies the family)."""
    name = str(getattr(scheme, "name", "unknown")).split()[0]
    if name not in SCHEME_READ_SECONDS:
        raise ConfigurationError(
            f"cannot derive the scheme family of {scheme!r}"
        )
    return name


def scheme_margin_arrays(
    scheme, population: CellPopulation
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-bit ``(sm0, sm1)`` margins of a scheme *instance* over a
    population — the operating point the march's margin-scan reads use."""
    name = scheme_family(scheme)
    if name == "conventional":
        return population_conventional_margins(
            population, scheme.i_read, scheme.v_ref
        )
    if name == "destructive":
        return population_destructive_margins(
            population, scheme.i_read2, scheme.beta, rtr_shift=scheme.rtr_shift
        )
    if name == "nondestructive":
        return population_nondestructive_margins(
            population,
            scheme.i_read2,
            scheme.beta,
            alpha=scheme.divider.ratio,
            rtr_shift=scheme.rtr_shift,
        )
    raise ConfigurationError(
        f"cannot derive margin arrays for scheme {scheme!r}"
    )


def _observe(
    states: np.ndarray,
    sm0: np.ndarray,
    sm1: np.ndarray,
    offset: np.ndarray,
    resolution: float,
) -> np.ndarray:
    """One margin-scan read of every cell: ``int8`` observed bits with
    ``-1`` for metastable (unresolved) comparisons.

    The comparator sees ``V_BL1 - V_BO + offset``; for a stored "1" that
    differential *is* ``SM1``, for a stored "0" it is ``-SM0`` (the same
    identity :mod:`repro.core.margins` derives), so this reproduces
    :meth:`SenseAmplifier.compare_bits` with ``rng=None`` exactly.
    """
    diff = np.where(states == 1, sm1, -sm0) + offset
    bits = (diff > 0.0).astype(np.int8)
    bits[np.abs(diff) < resolution] = -1
    return bits


@dataclasses.dataclass(frozen=True)
class _MarchBehavior:
    """Per-cell behavioural defect masks the state machine honours."""

    up_blocked: np.ndarray      #: w1 on a "0" cell leaves it at 0
    down_blocked: np.ndarray    #: w0 on a "1" cell leaves it at 1
    disturb_prone: np.ndarray   #: loses a "1" after repeated reads
    disturb_threshold: int = DISTURB_THRESHOLD

    @classmethod
    def from_fault_map(
        cls,
        fault_map: Optional[FaultMap],
        size: int,
        disturb_threshold: int = DISTURB_THRESHOLD,
    ) -> "_MarchBehavior":
        up = np.zeros(size, dtype=bool)
        down = np.zeros(size, dtype=bool)
        disturb = np.zeros(size, dtype=bool)
        if fault_map is not None:
            up[fault_map.of_kind(FaultKind.TRANSITION_UP)] = True
            down[fault_map.of_kind(FaultKind.TRANSITION_DOWN)] = True
            disturb[fault_map.of_kind(FaultKind.READ_DISTURB)] = True
        return cls(up, down, disturb, disturb_threshold)


@dataclasses.dataclass
class _MarchTally:
    """Per-cell read-back bookkeeping accumulated over the march."""

    fails_r0: np.ndarray        #: failed reads expecting "0"
    fails_r1: np.ndarray        #: failed reads expecting "1"
    metastable: np.ndarray      #: reads that came back unresolved
    disturb_signature: np.ndarray  #: passed-then-failed "1" without a write
    states: np.ndarray          #: final stored states

    @property
    def detected(self) -> np.ndarray:
        """Cells flagged by at least one failing read."""
        return (self.fails_r0 + self.fails_r1) > 0


def _execute_march(
    test: MarchTest,
    sm0: np.ndarray,
    sm1: np.ndarray,
    offset: np.ndarray,
    resolution: float,
    behavior: _MarchBehavior,
) -> _MarchTally:
    """Run the march state machine over every cell at once.

    Every operation is elementwise over the cell axis, so executing a
    wafer's dies stacked in one array is bit-exact with executing each
    die separately — the property the wafer driver's vectorized/reference
    equivalence gate rests on.
    """
    size = sm0.size
    states = np.zeros(size, dtype=np.uint8)
    since_write = np.zeros(size, dtype=np.int64)
    passed_one = np.zeros(size, dtype=bool)  # a "1" read passed since write
    tally = _MarchTally(
        fails_r0=np.zeros(size, dtype=np.int64),
        fails_r1=np.zeros(size, dtype=np.int64),
        metastable=np.zeros(size, dtype=np.int64),
        disturb_signature=np.zeros(size, dtype=bool),
        states=states,
    )
    for element in test.elements:
        for op in element.ops:
            if op == "w0":
                blocked = behavior.down_blocked & (states == 1)
                states[:] = np.where(blocked, 1, 0)
                since_write[:] = 0
                passed_one[:] = False
            elif op == "w1":
                blocked = behavior.up_blocked & (states == 0)
                states[:] = np.where(blocked, 0, 1)
                since_write[:] = 0
                passed_one[:] = False
            else:
                expected = 1 if op == "r1" else 0
                since_write += 1
                observed = _observe(states, sm0, sm1, offset, resolution)
                fail = observed != expected
                tally.metastable += observed == -1
                if expected == 0:
                    tally.fails_r0 += fail
                else:
                    tally.fails_r1 += fail
                    tally.disturb_signature |= (
                        fail & passed_one & (observed == 0)
                    )
                    passed_one |= ~fail
                # The parallelizing read current claims a marginal "1"
                # *after* this read returned its value.
                flip = (
                    behavior.disturb_prone
                    & (states == 1)
                    & (since_write >= behavior.disturb_threshold)
                )
                states[flip] = 0
    return tally


# ----------------------------------------------------------------------
# Classification and results
# ----------------------------------------------------------------------
def _parametric_stuck_masks(
    population: CellPopulation,
) -> Tuple[np.ndarray, np.ndarray]:
    """The DFT parametric screen: ``(shorted, open)`` cell masks from the
    static resistance arrays (what a tester's DC pre-screen measures)."""
    nominal = population.nominal
    shorted = population.r_high0 < _SHORT_FRACTION * nominal.r_low
    opened = population.r_low0 > _OPEN_FACTOR * nominal.r_high
    return shorted, opened


def _classify(
    population: CellPopulation, tally: _MarchTally
) -> Dict[FaultKind, np.ndarray]:
    """Diagnose each detected cell per the survey taxonomy.

    Priority order: the parametric screen settles the hard MTJ defects
    first (a stuck-open cell *behaves* like a transition fault under
    self-referenced sensing — only its resistance gives it away), the
    passed-then-failed signature identifies read disturb, a clean
    single-polarity failure is a transition fault, and everything left
    (metastable or mixed-polarity) is a sense-margin marginality.
    """
    detected = tally.detected
    shorted, opened = _parametric_stuck_masks(population)
    remaining = detected.copy()
    classified: Dict[FaultKind, np.ndarray] = {}

    def claim(kind: FaultKind, mask: np.ndarray) -> None:
        take = remaining & mask
        if take.any():
            classified[kind] = np.nonzero(take)[0]
            remaining[take] = False

    claim(FaultKind.STUCK_SHORT, shorted)
    claim(FaultKind.STUCK_OPEN, opened)
    claim(FaultKind.READ_DISTURB, tally.disturb_signature)
    clean = tally.metastable == 0
    claim(FaultKind.TRANSITION_UP, clean & (tally.fails_r1 > 0) & (tally.fails_r0 == 0))
    claim(FaultKind.TRANSITION_DOWN, clean & (tally.fails_r0 > 0) & (tally.fails_r1 == 0))
    claim(FaultKind.SENSE_MARGIN, remaining)
    return classified


def detection_coverage(
    detected: np.ndarray, fault_map: FaultMap
) -> Dict[str, float]:
    """Detected fraction of an injected ground truth, per kind.

    ``detected`` is a per-cell detection mask aligned with the map's
    cells.  Keys are the injected kinds plus ``overall``; a kind that was
    never injected scores 1.0 (nothing to miss).
    """
    scores: Dict[str, float] = {}
    injected_total = 0
    detected_total = 0
    for kind, indices in fault_map.indices.items():
        if indices.size == 0:
            scores[kind.value] = 1.0
            continue
        hit = int(np.count_nonzero(detected[indices]))
        scores[kind.value] = hit / indices.size
        injected_total += indices.size
        detected_total += hit
    scores["overall"] = (
        detected_total / injected_total if injected_total else 1.0
    )
    return scores


@dataclasses.dataclass(frozen=True)
class MarchResult:
    """Outcome of one march run: detection map plus diagnosis."""

    test: str
    cells: int
    operations: int
    detected: np.ndarray                      #: per-cell detection mask
    classified: Dict[FaultKind, np.ndarray]   #: diagnosis → cell indices
    metastable_cells: int                     #: cells with unresolved reads

    @property
    def detected_count(self) -> int:
        """Number of cells flagged by the march."""
        return int(np.count_nonzero(self.detected))

    def classified_of(self, kind: FaultKind) -> np.ndarray:
        """Cell indices diagnosed as ``kind`` (empty when none were)."""
        return self.classified.get(kind, np.empty(0, dtype=np.intp))

    def coverage(self, fault_map: FaultMap) -> Dict[str, float]:
        """Detected fraction of the injected ground truth, per kind.

        Keys are the injected :class:`FaultKind` values plus ``overall``;
        a kind that was never injected scores 1.0 (nothing to miss).
        Coverage is about *detection* — a misclassified but flagged cell
        still counts, matching how production escapes are scored.
        """
        return detection_coverage(self.detected, fault_map)


def run_march_test(
    target,
    test: MarchTest,
    scheme,
    fault_map: Optional[FaultMap] = None,
    disturb_threshold: int = DISTURB_THRESHOLD,
) -> MarchResult:
    """Execute one march against an array (or bare population).

    ``target`` is an :class:`~repro.array.array.STTRAMArray` or a
    :class:`~repro.device.variation.CellPopulation` — typically one a
    :class:`~repro.faults.injector.FaultInjector` has already struck;
    pass the injector's :class:`FaultMap` so behavioural defects
    (transition, disturb-prone) act during the march and so
    :meth:`MarchResult.coverage` can be scored.  ``scheme`` is a sensing
    scheme instance; its operating point and sense amplifier define the
    margin-scan read mode.  The run is fully deterministic.
    """
    population = getattr(target, "population", target)
    if not isinstance(population, CellPopulation):
        raise ConfigurationError(
            f"expected an STTRAMArray or CellPopulation, got {target!r}"
        )
    sm0, sm1 = scheme_margin_arrays(scheme, population)
    offset = scheme.sense_amp.offset + population.sa_offset
    behavior = _MarchBehavior.from_fault_map(
        fault_map, population.size, disturb_threshold
    )
    tally = _execute_march(
        test, sm0, sm1, offset, scheme.sense_amp.resolution, behavior
    )
    return MarchResult(
        test=test.name,
        cells=population.size,
        operations=test.operation_count(population.size),
        detected=tally.detected,
        classified=_classify(population, tally),
        metastable_cells=int(np.count_nonzero(tally.metastable > 0)),
    )
