"""Wafer-scale production test: Monte-Carlo dies through the full flow.

The driver stacks an entire wafer's dies into one cell population —
die-level *systematic* variation (lithographic α-divider skew, an oxide /
resistance scale, an access-transistor corner) layered over the within-die
random variation — strikes it with the fault injector, and runs every die
through **march test → characterize/trim → spare-word repair → ECC
provision → ship/scrap**.

All per-die processing is purely elementwise over the cell axis plus
per-die reductions, so the **vectorized** engine (thousands of dies per
chunk) is bit-exact with the **reference** engine (one die at a time) — an
equivalence the benchmark gates, in the same spirit as the repo's
scalar-vs-batch read contracts.  Randomness is confined to
:func:`build_wafer`, which draws everything from the reserved
``(seed, prodtest)`` stream of :mod:`repro.streams`; the flow itself is
deterministic, which is what makes the equality gate meaningful.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.array.testchip import TESTCHIP_VARIATION
from repro.calibration.fit import CalibrationResult, calibrate
from repro.device.variation import CellPopulation
from repro.ecc.yield_model import provision_ecc
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, FaultMap
from repro.faults.models import (
    FaultKind,
    ReadDisturbProneFault,
    StuckOpenFault,
    StuckShortFault,
    TransitionFault,
)
from repro.prodtest.characterize import (
    CharacterizeConfig,
    _margins_at,
    characterize_dies,
)
from repro.prodtest.march import (
    MARCH_TESTS,
    _MarchBehavior,
    _execute_march,
    _classify,
    _parametric_stuck_masks,
    detection_coverage,
    march_seconds,
    scheme_family,
    scheme_margin_arrays,
)
from repro.streams import stream_rng

__all__ = [
    "WaferConfig",
    "Wafer",
    "WaferResult",
    "build_wafer",
    "run_wafer",
    "default_die_faults",
]

#: Fixed diagnosis → code mapping of the per-cell classification array.
CLASSIFICATION_ORDER: Tuple[FaultKind, ...] = (
    FaultKind.STUCK_SHORT,
    FaultKind.STUCK_OPEN,
    FaultKind.TRANSITION_UP,
    FaultKind.TRANSITION_DOWN,
    FaultKind.READ_DISTURB,
    FaultKind.SENSE_MARGIN,
)


def default_die_faults(rate: float = 2.0e-3) -> List:
    """The wafer's defect cocktail at a total per-cell ``rate``.

    Half the defect density is hard MTJ damage (shorts and opens in equal
    parts), a quarter is write-path transition faults (split between the
    two polarities), and a quarter is disturb-prone low-barrier bits —
    roughly the mix the STT-MRAM testing literature motivates its march
    extensions with.
    """
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"fault rate must lie in [0, 1], got {rate}")
    return [
        StuckShortFault(rate=rate / 4.0),
        StuckOpenFault(rate=rate / 4.0),
        TransitionFault(rate=rate / 8.0, direction="up"),
        TransitionFault(rate=rate / 8.0, direction="down"),
        ReadDisturbProneFault(rate=rate / 4.0),
    ]


@dataclasses.dataclass(frozen=True)
class WaferConfig:
    """Geometry and flow knobs of one wafer run."""

    #: Not a pytest test class despite the name (pytest collection hint).
    __test__ = False

    dies: int = 512
    die_rows: int = 8
    die_columns: int = 8
    word_cells: int = 16
    spare_words: int = 1            #: redundant words repair can remap
    max_correctable: int = 2        #: strongest provisionable ECC (DECTED)
    scheme: str = "nondestructive"
    march: str = "march-1t1j"
    seed: int = 2010
    variation_scale: float = 1.0    #: within-die random variation scale
    alpha_sigma: float = 0.02       #: die-level systematic α-divider skew
    resistance_sigma: float = 0.02  #: die-level systematic resistance scale
    rtr_sigma: float = 0.02         #: die-level transistor-corner scale
    fault_rate: float = 2.0e-3      #: total per-cell defect rate
    gross_fail_dead: int = 8        #: dead cells above which the die is
                                    #: a gross fail (skips characterize)
    chunk_dies: int = 4096          #: dies per vectorized chunk
    fail_budget: Optional[int] = None  #: margin-fail allowance; defaults
                                       #: to the spare-word cell count

    def __post_init__(self) -> None:
        if self.dies < 1:
            raise ConfigurationError(f"dies must be >= 1, got {self.dies}")
        if self.die_rows < 1 or self.die_columns < 1:
            raise ConfigurationError("die dimensions must be positive")
        if self.word_cells < 1 or self.cells % self.word_cells:
            raise ConfigurationError(
                f"die of {self.cells} cells is not a whole number of "
                f"{self.word_cells}-cell words"
            )
        if self.spare_words < 0 or self.spare_words >= self.words:
            raise ConfigurationError(
                f"spare_words must lie in [0, {self.words}), got "
                f"{self.spare_words}"
            )
        if self.max_correctable < 0:
            raise ConfigurationError("max_correctable must be >= 0")
        if self.scheme not in ("conventional", "destructive", "nondestructive"):
            raise ConfigurationError(f"unknown scheme {self.scheme!r}")
        if self.march not in MARCH_TESTS:
            raise ConfigurationError(
                f"unknown march {self.march!r}; expected one of "
                f"{sorted(MARCH_TESTS)}"
            )
        if self.chunk_dies < 1:
            raise ConfigurationError("chunk_dies must be >= 1")
        if self.gross_fail_dead < 0:
            raise ConfigurationError("gross_fail_dead must be >= 0")

    @property
    def cells(self) -> int:
        """Cells per die."""
        return self.die_rows * self.die_columns

    @property
    def words(self) -> int:
        """Words per die."""
        return self.cells // self.word_cells

    @property
    def wafer_cells(self) -> int:
        """Cells on the whole wafer."""
        return self.dies * self.cells

    def characterize_config(self) -> CharacterizeConfig:
        """The characterization pass this wafer's dies run."""
        budget = (
            self.fail_budget
            if self.fail_budget is not None
            else self.spare_words * self.word_cells
        )
        return CharacterizeConfig(fail_budget=budget)


@dataclasses.dataclass
class Wafer:
    """A built (sampled + fault-struck) wafer, ready to test.

    ``population`` stacks all dies die-major; the behaviour masks are the
    fault map's ground truth expanded to booleans once, so chunk
    processing only ever slices.
    """

    config: WaferConfig
    population: CellPopulation
    fault_map: FaultMap
    alpha_skew: np.ndarray       #: per-die systematic α-divider skew
    resistance_scale: np.ndarray  #: per-die systematic resistance factor
    rtr_scale: np.ndarray        #: per-die transistor-corner factor
    calibration: CalibrationResult

    @property
    def dies(self) -> int:
        """Dies on the wafer."""
        return self.config.dies

    def scheme(self):
        """The sensing scheme instance the wafer's flow runs."""
        # Imported at call time: ``repro.faults.campaign`` reaches back
        # through ``repro.array`` (whose testflow shim imports this
        # package), so a module-level import would be circular whenever
        # ``repro.faults`` is the first package imported.
        from repro.faults.campaign import build_scheme

        return build_scheme(self.config.scheme, self.calibration, 917.0)

    def behavior_masks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(up_blocked, down_blocked, disturb_prone)`` wafer-cell masks."""
        size = self.config.wafer_cells
        up = np.zeros(size, dtype=bool)
        down = np.zeros(size, dtype=bool)
        disturb = np.zeros(size, dtype=bool)
        up[self.fault_map.of_kind(FaultKind.TRANSITION_UP)] = True
        down[self.fault_map.of_kind(FaultKind.TRANSITION_DOWN)] = True
        disturb[self.fault_map.of_kind(FaultKind.READ_DISTURB)] = True
        return up, down, disturb


def build_wafer(
    config: Optional[WaferConfig] = None,
    calibration: Optional[CalibrationResult] = None,
) -> Wafer:
    """Sample and fault-strike one wafer from the reserved prodtest stream.

    All randomness happens here, in a fixed draw order on
    ``stream_rng(seed, "prodtest")``: die systematics first, then one
    population draw for every cell on the wafer, then the fault
    injection.  The test flow downstream is deterministic.
    """
    config = config if config is not None else WaferConfig()
    calibration = calibration if calibration is not None else calibrate()
    rng = stream_rng(config.seed, "prodtest")

    # 1. Die-level systematics.
    alpha_skew = rng.normal(0.0, config.alpha_sigma, config.dies)
    resistance_scale = np.clip(
        rng.normal(1.0, config.resistance_sigma, config.dies), 0.5, 2.0
    )
    rtr_scale = np.clip(
        rng.normal(1.0, config.rtr_sigma, config.dies), 0.5, 2.0
    )

    # 2. Within-die random variation for every cell on the wafer.
    population = CellPopulation.sample(
        config.wafer_cells,
        TESTCHIP_VARIATION.scaled(config.variation_scale),
        params=calibration.params,
        rolloff_high=calibration.rolloff_high(),
        rolloff_low=calibration.rolloff_low(),
        rng=rng,
    )

    # 3. Apply the systematics die by die (broadcast over each die's cells).
    cells = config.cells
    population.alpha_deviation = population.alpha_deviation + np.repeat(
        alpha_skew, cells
    )
    res = np.repeat(resistance_scale, cells)
    population.r_low0 = population.r_low0 * res
    population.r_high0 = population.r_high0 * res
    population.dr_low_max = population.dr_low_max * res
    population.dr_high_max = population.dr_high_max * res
    population.r_tr = population.r_tr * np.repeat(rtr_scale, cells)

    # 4. Strike the defect cocktail across the whole wafer.
    injector = FaultInjector(default_die_faults(config.fault_rate), rng)
    fault_map = injector.inject_population(population)

    return Wafer(
        config=config,
        population=population,
        fault_map=fault_map,
        alpha_skew=alpha_skew,
        resistance_scale=resistance_scale,
        rtr_scale=rtr_scale,
        calibration=calibration,
    )


@dataclasses.dataclass(frozen=True)
class WaferResult:
    """Full per-die outcome of one wafer's production test flow."""

    config: WaferConfig
    scheme: str                   #: scheme family tested
    march: str                    #: march algorithm run
    detected: np.ndarray          #: per-cell march detection mask
    classification: np.ndarray    #: per-cell diagnosis code (int8, -1 none;
                                  #: codes index :data:`CLASSIFICATION_ORDER`)
    dead_cells: np.ndarray        #: per-die parametric-stuck count
    gross_fail: np.ndarray        #: per-die gross-fail verdict
    trim_codes: np.ndarray        #: per-die trim code
    trim_values: np.ndarray       #: per-die trimmed knob value
    binding_margins: np.ndarray   #: per-die k-th-worst binding margin [V]
    sense_factors: np.ndarray     #: per-die trimmed read-current scale
    retry_budgets: np.ndarray     #: per-die provisioned retries
    char_passes: np.ndarray       #: per-die characterization verdict
    repaired_words: np.ndarray    #: per-die spare words consumed
    ecc_levels: np.ndarray        #: per-die residual worst-word fail count
    ecc_parity_bits: np.ndarray   #: per-die provisioned check bits per word
    ecc_covered: np.ndarray       #: per-die ECC-provisionable verdict
    ships: np.ndarray             #: per-die ship/scrap verdict
    test_seconds: np.ndarray      #: per-die tester time [s]
    coverage: Dict[str, float]    #: detected fraction per injected kind

    @property
    def dies(self) -> int:
        """Dies tested."""
        return int(self.ships.size)

    @property
    def shipped(self) -> int:
        """Dies that shipped."""
        return int(np.count_nonzero(self.ships))

    @property
    def ship_rate(self) -> float:
        """Shipping yield."""
        return self.shipped / self.dies

    @property
    def total_test_seconds(self) -> float:
        """Tester time over the whole wafer [s]."""
        return float(self.test_seconds.sum())

    @property
    def data_cells_per_die(self) -> int:
        """Usable data cells of a shipped die (spares and parity carved
        out of the gross array)."""
        words = self.config.words - self.config.spare_words
        return words * self.config.word_cells

    def classified_counts(self) -> Dict[str, int]:
        """Wafer-wide diagnosis counts by kind."""
        counts: Dict[str, int] = {}
        for code, kind in enumerate(CLASSIFICATION_ORDER):
            n = int(np.count_nonzero(self.classification == code))
            if n:
                counts[kind.value] = n
        return counts

    def equals(self, other: "WaferResult") -> bool:
        """Exact per-die/per-cell equality — the vectorized-vs-reference
        equivalence gate (floats compared bit for bit, not approximately).
        """
        arrays = (
            "detected", "classification", "dead_cells", "gross_fail",
            "trim_codes", "trim_values", "binding_margins", "sense_factors",
            "retry_budgets", "char_passes", "repaired_words", "ecc_levels",
            "ecc_parity_bits", "ecc_covered", "ships", "test_seconds",
        )
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in arrays
        )


def _process_dies(
    wafer: Wafer,
    scheme,
    behavior_masks: Tuple[np.ndarray, np.ndarray, np.ndarray],
    start: int,
    stop: int,
) -> Dict[str, np.ndarray]:
    """Run the deterministic flow over dies ``[start, stop)``.

    Every step is elementwise over cells plus per-die reductions, so the
    output for a die does not depend on which other dies share the chunk.
    """
    config = wafer.config
    cells = config.cells
    lo, hi = start * cells, stop * cells
    population = wafer.population.subset(np.arange(lo, hi))
    up, down, disturb = (mask[lo:hi] for mask in behavior_masks)
    family = scheme_family(scheme)
    char_config = config.characterize_config()

    # March test at the untrimmed (design-point) operating condition.
    sm0, sm1 = scheme_margin_arrays(scheme, population)
    offset = scheme.sense_amp.offset + population.sa_offset
    test = MARCH_TESTS[config.march]
    tally = _execute_march(
        test, sm0, sm1, offset, scheme.sense_amp.resolution,
        _MarchBehavior(up, down, disturb),
    )
    detected = tally.detected
    classified = _classify(population, tally)
    classification = np.full(population.size, -1, dtype=np.int8)
    for code, kind in enumerate(CLASSIFICATION_ORDER):
        if kind in classified:
            classification[classified[kind]] = code

    shorted, opened = _parametric_stuck_masks(population)
    dead = shorted | opened
    dead_cells = np.count_nonzero(dead.reshape(-1, cells), axis=1)
    gross_fail = dead_cells > config.gross_fail_dead

    # Characterize every die (gross fails run too — the arithmetic is
    # deterministic either way; they are only spared the tester *time*).
    char = characterize_dies(population, cells, scheme, char_config)

    # Post-trim verification march at each die's trimmed operating point:
    # the incoming march's sense-margin detections include cells the trim
    # cures, so the *repair* fail map comes from re-running the march at
    # the trimmed condition (plus any cell still under the margin bar).
    knob_per_cell = np.repeat(char.values, cells)
    t_sm0, t_sm1 = _margins_at(scheme, population, knob_per_cell, 1.0)
    verify = _execute_march(
        test, t_sm0, t_sm1, offset, scheme.sense_amp.resolution,
        _MarchBehavior(up, down, disturb),
    )
    weak = np.minimum(t_sm0, t_sm1) <= char_config.required_margin
    defective = (verify.detected | dead | weak).reshape(-1, cells)

    # Word-level spare repair: remap the worst spare_words words per die
    # (stable order — ties resolve to the lowest word index), spending a
    # spare only on words that actually contain defects.
    dies = stop - start
    per_word = defective.reshape(dies, config.words, config.word_cells).sum(
        axis=2
    )
    residual = per_word.copy()
    repaired_words = np.zeros(dies, dtype=np.int64)
    if config.spare_words:
        worst = np.argsort(-per_word, axis=1, kind="stable")[
            :, : config.spare_words
        ]
        worst_counts = np.take_along_axis(per_word, worst, axis=1)
        spend = worst_counts > 0
        np.put_along_axis(residual, worst, np.where(spend, 0, worst_counts), axis=1)
        repaired_words = spend.sum(axis=1).astype(np.int64)

    # ECC provisioning over the residual fail map, then the ship verdict.
    provision = provision_ecc(
        residual, config.word_cells, config.max_correctable
    )
    ships = ~gross_fail & char.passes & provision.covered

    # Tester time: one incoming march for every die; each characterization
    # shmoo point re-runs the march at a candidate operating condition,
    # plus the post-trim verification march — and gross fails skip
    # characterization (and its verification) entirely.
    march_s = march_seconds(test, cells, family)
    shmoo_points = (
        char_config.code_bits + 3 + (len(set(char_config.sense_factors)) - 1)
    )
    test_seconds = march_s * (
        1.0 + np.where(gross_fail, 0.0, shmoo_points + 1.0)
    )

    return {
        "detected": detected,
        "classification": classification,
        "dead_cells": dead_cells.astype(np.int64),
        "gross_fail": gross_fail,
        "trim_codes": char.codes,
        "trim_values": char.values,
        "binding_margins": char.binding_margins,
        "sense_factors": char.sense_factors,
        "retry_budgets": char.retry_budgets,
        "char_passes": char.passes,
        "repaired_words": repaired_words,
        "ecc_levels": provision.levels,
        "ecc_parity_bits": provision.parity_bits,
        "ecc_covered": provision.covered,
        "ships": ships,
        "test_seconds": test_seconds,
    }


def run_wafer(wafer: Wafer, engine: str = "vectorized") -> WaferResult:
    """Test every die on a built wafer.

    ``engine="vectorized"`` processes ``config.chunk_dies`` dies per pass;
    ``engine="reference"`` is the auditably-simple per-die loop.  The two
    must agree bit for bit (:meth:`WaferResult.equals`) — the benchmark
    and the CLI ``--check`` enforce it.
    """
    if engine not in ("vectorized", "reference"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected vectorized/reference"
        )
    config = wafer.config
    scheme = wafer.scheme()
    masks = wafer.behavior_masks()
    step = config.chunk_dies if engine == "vectorized" else 1
    chunks = [
        _process_dies(wafer, scheme, masks, start, min(start + step, config.dies))
        for start in range(0, config.dies, step)
    ]
    merged = {
        key: np.concatenate([chunk[key] for chunk in chunks])
        for key in chunks[0]
    }
    return WaferResult(
        config=config,
        scheme=scheme_family(scheme),
        march=MARCH_TESTS[config.march].name,
        coverage=detection_coverage(merged["detected"], wafer.fault_map),
        **merged,
    )
