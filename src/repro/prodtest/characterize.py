"""Per-die characterization: binary-search trim against a pass/fail shmoo.

Production trim does not get to run an optimizer per die — it walks a
*discrete trim-code lattice* (the fuse/register codes the design actually
exposes) with a binary search against the tester's pass/fail verdict,
OpenNVRAM style.  Per die this finds:

* the **trim code** balancing the two worst-case sense margins — the β
  ratio for the self-referenced schemes, the reference voltage ``V_REF``
  for conventional sensing;
* the minimal **sense-current factor** that still passes (read-energy
  trim; margins grow with read current, so the search is monotone);
* a **retry budget** sized from the die's marginal-cell count (cells whose
  binding margin clears the requirement but sits inside the guardband).

The pass/fail predicate is repair-aware: a die passes when its
``fail_budget``-th-worst binding margin clears ``required_margin`` — the
``fail_budget`` worst cells are the ones spare-word repair and ECC will
absorb downstream.  Cells the parametric screen already condemned
(stuck-short/open) are excluded from the margin statistics entirely;
trim serves the repairable remainder, not the dead cells.

Everything is vectorized over dies with a *fixed* iteration count and
purely elementwise updates (per-die ``np.where`` on the search bounds), so
characterizing a stacked chunk of dies is bit-exact with characterizing
each die alone — the property the wafer driver's equivalence gate checks.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.margins import (
    population_conventional_margins,
    population_destructive_margins,
    population_nondestructive_margins,
)
from repro.device.variation import CellPopulation
from repro.errors import ConfigurationError
from repro.prodtest.march import _parametric_stuck_masks, scheme_family

__all__ = [
    "CharacterizeConfig",
    "CharacterizeResult",
    "TrimRecord",
    "characterize_dies",
    "knob_bounds",
]

#: Sense-current factors the energy trim may select, best (cheapest) last.
#: The search walks them descending and keeps the smallest passing one.
_SENSE_FACTORS = (1.0, 0.9, 0.8, 0.7, 0.6)


@dataclasses.dataclass(frozen=True)
class CharacterizeConfig:
    """Knobs of the per-die characterization pass."""

    code_bits: int = 6              #: trim-code lattice width (2^bits codes)
    required_margin: float = 8.0e-3  #: pass threshold on the binding margin [V]
    guardband: float = 1.5          #: marginal band = (required, guardband*required]
    fail_budget: int = 16           #: worst cells repair/ECC will absorb
    max_retry_budget: int = 4       #: cap on the provisioned retry budget
    sense_factors: Tuple[float, ...] = _SENSE_FACTORS

    def __post_init__(self) -> None:
        if self.code_bits < 1 or self.code_bits > 16:
            raise ConfigurationError(
                f"code_bits must lie in [1, 16], got {self.code_bits}"
            )
        if self.required_margin <= 0.0:
            raise ConfigurationError(
                f"required_margin must be positive, got {self.required_margin}"
            )
        if self.guardband < 1.0:
            raise ConfigurationError(
                f"guardband must be >= 1, got {self.guardband}"
            )
        if self.fail_budget < 0:
            raise ConfigurationError(
                f"fail_budget must be >= 0, got {self.fail_budget}"
            )
        if self.max_retry_budget < 0:
            raise ConfigurationError(
                f"max_retry_budget must be >= 0, got {self.max_retry_budget}"
            )
        if not self.sense_factors or any(
            not 0.0 < f <= 1.0 for f in self.sense_factors
        ):
            raise ConfigurationError(
                "sense_factors must be a non-empty tuple of factors in (0, 1]"
            )

    @property
    def codes(self) -> int:
        """Number of points on the trim-code lattice."""
        return 1 << self.code_bits


def knob_bounds(scheme) -> Tuple[str, float, float]:
    """``(knob_name, low, high)`` of a scheme's trim-code lattice.

    The self-referenced schemes trim the current ratio β (the
    nondestructive scheme has the wide usable range the paper's Fig. 8
    flat-top implies; the destructive scheme's range is pinched by its
    erase step), conventional sensing trims the shared reference around
    its design point.
    """
    family = scheme_family(scheme)
    if family == "nondestructive":
        return "beta", 1.05, 3.6
    if family == "destructive":
        return "beta", 1.02, 1.8
    return "v_ref", scheme.v_ref - 0.03, scheme.v_ref + 0.03


@dataclasses.dataclass(frozen=True)
class TrimRecord:
    """One die's characterization outcome (what burns into its fuses)."""

    die: int
    knob: str               #: "beta" or "v_ref"
    code: int               #: trim code on the lattice
    value: float            #: knob value the code encodes
    binding_margin: float   #: fail_budget-th-worst binding margin [V]
    sense_factor: float     #: selected read-current scale
    retry_budget: int       #: provisioned serving retries
    passes: bool            #: die cleared the margin requirement


@dataclasses.dataclass(frozen=True)
class CharacterizeResult:
    """Vectorized characterization outcome over a batch of dies."""

    knob: str
    codes: np.ndarray            #: per-die trim code
    values: np.ndarray           #: per-die knob value
    binding_margins: np.ndarray  #: per-die fail_budget-th-worst margin [V]
    sense_factors: np.ndarray    #: per-die read-current scale
    retry_budgets: np.ndarray    #: per-die provisioned retries
    passes: np.ndarray           #: per-die pass verdicts
    marginal_cells: np.ndarray   #: per-die guardband-cell counts

    @property
    def dies(self) -> int:
        """Number of dies characterized."""
        return int(self.codes.size)

    def record(self, die: int) -> TrimRecord:
        """The :class:`TrimRecord` of one die."""
        return TrimRecord(
            die=die,
            knob=self.knob,
            code=int(self.codes[die]),
            value=float(self.values[die]),
            binding_margin=float(self.binding_margins[die]),
            sense_factor=float(self.sense_factors[die]),
            retry_budget=int(self.retry_budgets[die]),
            passes=bool(self.passes[die]),
        )

    def records(self) -> Iterator[TrimRecord]:
        """All per-die records in die order."""
        for die in range(self.dies):
            yield self.record(die)


def _code_values(codes: np.ndarray, low: float, high: float, config: CharacterizeConfig) -> np.ndarray:
    """Map lattice codes to knob values (linear DAC over the bounds)."""
    return low + (high - low) * codes / (config.codes - 1)


def _margins_at(
    scheme,
    population: CellPopulation,
    knob_per_cell: np.ndarray,
    sense_factor,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cell margins at a per-cell knob value and sense-current scale."""
    family = scheme_family(scheme)
    if family == "conventional":
        return population_conventional_margins(
            population, scheme.i_read * sense_factor, knob_per_cell
        )
    if family == "destructive":
        return population_destructive_margins(
            population,
            scheme.i_read2 * sense_factor,
            knob_per_cell,
            rtr_shift=scheme.rtr_shift,
        )
    return population_nondestructive_margins(
        population,
        scheme.i_read2 * sense_factor,
        knob_per_cell,
        alpha=scheme.divider.ratio,
        rtr_shift=scheme.rtr_shift,
    )


def _die_stats(
    scheme,
    population: CellPopulation,
    alive: np.ndarray,
    codes: np.ndarray,
    bounds: Tuple[str, float, float],
    config: CharacterizeConfig,
    cells: int,
    sense_factor=1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-die ``(worst_sm0, worst_sm1, kth_binding)`` at per-die codes.

    Dead (parametric-stuck) cells are masked to ``+inf`` so they bind
    nothing; the k-th order statistic is taken per die row, which is
    invariant to how dies are batched.
    """
    _, low, high = bounds
    values = _code_values(codes, low, high, config)
    knob_per_cell = np.repeat(values, cells)
    sm0, sm1 = _margins_at(scheme, population, knob_per_cell, sense_factor)
    sm0 = np.where(alive, sm0, np.inf).reshape(-1, cells)
    sm1 = np.where(alive, sm1, np.inf).reshape(-1, cells)
    binding = np.minimum(sm0, sm1)
    k = min(config.fail_budget, cells - 1)
    kth = np.partition(binding, k, axis=1)[:, k]
    return sm0.min(axis=1), sm1.min(axis=1), kth


def characterize_dies(
    population: CellPopulation,
    cells_per_die: int,
    scheme,
    config: Optional[CharacterizeConfig] = None,
) -> CharacterizeResult:
    """Binary-search characterize every die of a stacked population.

    ``population`` holds the cells of ``population.size // cells_per_die``
    dies, die-major.  The trim search balances each die's worst-case
    ``SM0`` against its worst-case ``SM1`` (both monotone in the knob,
    with opposite signs) over the discrete code lattice, then the
    sense-current trim keeps the smallest factor that still passes, and
    the retry budget is sized from the guardband-cell count.  Fully
    deterministic and batch-invariant.
    """
    config = config if config is not None else CharacterizeConfig()
    if cells_per_die < 1:
        raise ConfigurationError(
            f"cells_per_die must be >= 1, got {cells_per_die}"
        )
    if population.size % cells_per_die:
        raise ConfigurationError(
            f"population of {population.size} cells is not a whole number "
            f"of {cells_per_die}-cell dies"
        )
    dies = population.size // cells_per_die
    bounds = knob_bounds(scheme)
    shorted, opened = _parametric_stuck_masks(population)
    alive = ~(shorted | opened)

    # Integer bisection on the monotone imbalance worst_sm0 - worst_sm1
    # (increasing in β and in V_REF): fixed code_bits iterations so every
    # die walks the lattice in lockstep.
    lo = np.zeros(dies, dtype=np.int64)
    hi = np.full(dies, config.codes - 1, dtype=np.int64)
    for _ in range(config.code_bits):
        mid = (lo + hi) // 2
        worst0, worst1, _ = _die_stats(
            scheme, population, alive, mid, bounds, config, cells_per_die
        )
        raise_knob = worst0 < worst1
        lo = np.where(raise_knob, np.minimum(mid + 1, config.codes - 1), lo)
        hi = np.where(raise_knob, hi, np.maximum(mid - 1, 0))

    # The bisection lands next to the balance point; test the immediate
    # neighbourhood and keep the code with the best k-th binding margin.
    candidates = np.stack(
        [
            np.clip(lo - 1, 0, config.codes - 1),
            np.clip(lo, 0, config.codes - 1),
            np.clip(lo + 1, 0, config.codes - 1),
        ]
    )
    kth_margins = np.stack(
        [
            _die_stats(
                scheme, population, alive, candidate, bounds, config,
                cells_per_die,
            )[2]
            for candidate in candidates
        ]
    )
    best = np.argmax(kth_margins, axis=0)
    codes = candidates[best, np.arange(dies)]
    binding = kth_margins[best, np.arange(dies)]
    values = _code_values(codes, bounds[1], bounds[2], config)

    # Read-energy trim: margins shrink with the sense factor, so keep the
    # smallest factor whose k-th binding margin still clears the bar.
    descending = sorted(set(config.sense_factors), reverse=True)
    factors = np.full(dies, descending[0], dtype=float)
    for factor in descending[1:]:
        _, _, kth = _die_stats(
            scheme, population, alive, codes, bounds, config, cells_per_die,
            sense_factor=factor,
        )
        accept = kth > config.required_margin
        factors = np.where(accept, factor, factors)

    # A die passes when its repairable remainder clears the bar AND its
    # dead-cell count fits inside the repair/ECC budget (a die that is
    # mostly dead has an +inf order statistic — that is not a pass).
    dead_per_die = np.count_nonzero(
        ~alive.reshape(-1, cells_per_die), axis=1
    )
    passes = (binding > config.required_margin) & (
        dead_per_die <= config.fail_budget
    )

    # Retry provisioning from the marginal-cell count: cells whose binding
    # margin clears the bar but sits inside the guardband are the ones a
    # serving-time retry will occasionally have to rescue.
    knob_per_cell = np.repeat(values, cells_per_die)
    sm0, sm1 = _margins_at(scheme, population, knob_per_cell, 1.0)
    cell_binding = np.where(alive, np.minimum(sm0, sm1), np.inf).reshape(
        -1, cells_per_die
    )
    marginal = np.count_nonzero(
        (cell_binding > config.required_margin)
        & (cell_binding <= config.guardband * config.required_margin),
        axis=1,
    )
    retry_budgets = np.minimum(
        np.ceil(marginal / 8.0).astype(np.int64), config.max_retry_budget
    )

    return CharacterizeResult(
        knob=bounds[0],
        codes=codes,
        values=values,
        binding_margins=binding,
        sense_factors=factors,
        retry_budgets=retry_budgets,
        passes=passes,
        marginal_cells=marginal.astype(np.int64),
    )
