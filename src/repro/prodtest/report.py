"""Wafer-report economics: yield, test time, and cost per good bit.

Production decisions are made in dollars, not millivolts: a scheme that
needs a longer march (the destructive self-reference read spans erase +
two reads + write-back) pays for it on every die at test, and a scheme
that needs heavier ECC provisioning pays in parity area on every shipped
die.  This module folds a :class:`~repro.prodtest.wafer.WaferResult` into
those terms, sweeps variation scales across the three sensing schemes,
and publishes the headline numbers through :mod:`repro.obs` gauges.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.prodtest.wafer import WaferConfig, WaferResult, build_wafer, run_wafer

__all__ = [
    "CostModel",
    "WaferSummary",
    "summarize",
    "compare_schemes",
    "publish_wafer_report",
]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """The two cost sources production test trades between."""

    wafer_dollars: float = 1500.0       #: processed-wafer cost, split per die
    tester_dollars_per_hour: float = 180.0  #: tester + handler burn rate

    def __post_init__(self) -> None:
        if self.wafer_dollars < 0.0 or self.tester_dollars_per_hour < 0.0:
            raise ConfigurationError("costs must be non-negative")

    def die_cost(self, dies: int, test_seconds: float) -> float:
        """Fully loaded cost of one die given its tester seconds [$]."""
        if dies < 1:
            raise ConfigurationError(f"dies must be >= 1, got {dies}")
        return (
            self.wafer_dollars / dies
            + test_seconds * self.tester_dollars_per_hour / 3600.0
        )


@dataclasses.dataclass(frozen=True)
class WaferSummary:
    """Headline production numbers of one wafer run."""

    scheme: str
    march: str
    dies: int
    shipped: int
    ship_rate: float
    gross_fails: int
    char_fails: int             #: dies failing characterization
    ecc_uncovered: int          #: dies whose residual exceeds the ECC cap
    coverage: Dict[str, float]
    classified: Dict[str, int]
    mean_test_seconds: float
    total_test_seconds: float
    mean_retry_budget: float
    mean_sense_factor: float
    mean_parity_bits: float     #: provisioned check bits per shipped word
    good_bits: float            #: net data bits shipped off the wafer
    cost_per_die: float
    cost_per_good_bit: float    #: ∞ when the wafer ships nothing


def _good_bits(result: WaferResult) -> float:
    """Net data bits of the shipped dies: spare words are carved out, and
    each word's provisioned parity dilutes its share of the array."""
    config = result.config
    if not result.shipped:
        return 0.0
    parity = result.ecc_parity_bits[result.ships]
    per_word_data = config.word_cells * config.word_cells / (
        config.word_cells + parity
    )
    data_words = config.words - config.spare_words
    return float((data_words * per_word_data).sum())


def summarize(
    result: WaferResult, cost: Optional[CostModel] = None
) -> WaferSummary:
    """Fold a wafer result into production terms."""
    cost = cost if cost is not None else CostModel()
    good_bits = _good_bits(result)
    wafer_dollars = cost.wafer_dollars + (
        result.total_test_seconds * cost.tester_dollars_per_hour / 3600.0
    )
    shipped = result.shipped
    return WaferSummary(
        scheme=result.scheme,
        march=result.march,
        dies=result.dies,
        shipped=shipped,
        ship_rate=result.ship_rate,
        gross_fails=int(np.count_nonzero(result.gross_fail)),
        char_fails=int(np.count_nonzero(~result.char_passes)),
        ecc_uncovered=int(np.count_nonzero(~result.ecc_covered)),
        coverage=dict(result.coverage),
        classified=result.classified_counts(),
        mean_test_seconds=float(result.test_seconds.mean()),
        total_test_seconds=result.total_test_seconds,
        mean_retry_budget=float(result.retry_budgets.mean()),
        mean_sense_factor=float(result.sense_factors.mean()),
        mean_parity_bits=(
            float(result.ecc_parity_bits[result.ships].mean())
            if shipped
            else 0.0
        ),
        good_bits=good_bits,
        cost_per_die=cost.die_cost(
            result.dies, float(result.test_seconds.mean())
        ),
        cost_per_good_bit=(
            wafer_dollars / good_bits if good_bits > 0.0 else float("inf")
        ),
    )


def compare_schemes(
    dies: int = 256,
    variation_scales: Sequence[float] = (1.0, 1.5, 2.0, 2.5),
    schemes: Sequence[str] = ("conventional", "destructive", "nondestructive"),
    march: str = "march-1t1j",
    seed: int = 2010,
    cost: Optional[CostModel] = None,
    config: Optional[WaferConfig] = None,
) -> List[dict]:
    """Yield / test-time / cost curves per sensing scheme.

    Runs one wafer per (scheme, scale) point — same seed, so every scheme
    is tested against the same systematic draw sequence — and returns one
    flat record per point, ready for tabulation or the benchmark JSON.
    ``config`` (minus its scheme/scale/dies/seed fields) carries any other
    geometry overrides.
    """
    base = config if config is not None else WaferConfig()
    records = []
    for scale in variation_scales:
        for scheme in schemes:
            wafer_config = dataclasses.replace(
                base,
                dies=dies,
                scheme=scheme,
                variation_scale=float(scale),
                seed=seed,
            )
            result = run_wafer(build_wafer(wafer_config))
            summary = summarize(result, cost)
            records.append(
                {
                    "scheme": scheme,
                    "scale": float(scale),
                    "dies": dies,
                    "yield": summary.ship_rate,
                    "coverage": summary.coverage["overall"],
                    "test_seconds_per_die": summary.mean_test_seconds,
                    "cost_per_good_bit": summary.cost_per_good_bit,
                    "mean_parity_bits": summary.mean_parity_bits,
                    "mean_retry_budget": summary.mean_retry_budget,
                }
            )
    return records


def publish_wafer_report(
    result: WaferResult, cost: Optional[CostModel] = None
) -> WaferSummary:
    """Summarize a wafer and publish the headline numbers as obs gauges.

    With observability disabled this is just :func:`summarize`.  Gauges:
    ``prodtest.yield`` / ``prodtest.test_seconds_per_die`` /
    ``prodtest.cost_per_good_bit`` (labelled by scheme),
    ``prodtest.coverage`` (labelled by fault kind), and the
    ``prodtest.dies`` counter (labelled by outcome).
    """
    summary = summarize(result, cost)
    if _obs.active():
        registry = _obs.get_registry()
        registry.set_gauge(
            "prodtest.yield", summary.ship_rate, scheme=summary.scheme
        )
        registry.set_gauge(
            "prodtest.test_seconds_per_die",
            summary.mean_test_seconds,
            scheme=summary.scheme,
        )
        if summary.good_bits > 0.0:
            registry.set_gauge(
                "prodtest.cost_per_good_bit",
                summary.cost_per_good_bit,
                scheme=summary.scheme,
            )
        for kind, fraction in summary.coverage.items():
            registry.set_gauge("prodtest.coverage", fraction, kind=kind)
        registry.inc("prodtest.dies", summary.shipped, outcome="shipped")
        registry.inc(
            "prodtest.dies", summary.dies - summary.shipped, outcome="scrapped"
        )
    return summary
