"""The paper's published numbers used as calibration targets and as the
paper-vs-measured reference in EXPERIMENTS.md.

Values follow the trailing-zero OCR recovery documented in DESIGN.md §2.
"""

from __future__ import annotations

import dataclasses

__all__ = ["PaperTargets", "PAPER_TARGETS"]


@dataclasses.dataclass(frozen=True)
class PaperTargets:
    """Anchor values from the paper (Tables I–II and §V text)."""

    # --- Table I: MTJ and transistor parameters -----------------------
    r_high: float = 2500.0          #: R_H at ~zero read current [Ω]
    r_low: float = 1220.0           #: R_L at ~zero read current [Ω]
    dr_high_max: float = 600.0      #: high-state roll-off at I_max [Ω]
    r_transistor: float = 917.0     #: NMOS linear-region resistance [Ω]
    i_read_max: float = 200e-6      #: maximum non-disturbing read current [A]
    i_switching: float = 500e-6     #: MTJ switching current, 4 ns pulse [A]
    read_disturb_fraction: float = 0.4  #: I_max / I_switching

    # --- Table I: optimized operating points --------------------------
    beta_destructive: float = 1.22          #: optimal β, destructive scheme
    margin_destructive: float = 76.6e-3     #: max sense margin [V]
    beta_nondestructive: float = 2.13       #: optimal β, nondestructive
    margin_nondestructive: float = 12.1e-3  #: max sense margin [V]
    alpha: float = 0.5                      #: designed divider ratio

    # --- Table II: robustness windows ----------------------------------
    rtr_window_destructive: float = 468.0       #: ± ΔR_TR window [Ω]
    rtr_window_nondestructive: float = 130.0    #: ± ΔR_TR window [Ω]
    alpha_window_upper: float = 0.0413          #: max Δα (fractional)
    alpha_window_lower: float = -0.0571         #: min Δα (fractional)
    beta_min_nondestructive: float = 2.0        #: Table II "Min. β"

    # --- §V: test chip and timing --------------------------------------
    testchip_bits: int = 16384              #: 16 kb test chip
    cells_per_bitline: int = 128
    sense_amp_window: float = 8.0e-3        #: required margin [V]
    conventional_fail_fraction: float = 0.01  #: ~1% of bits fail conventionally
    read_latency_nondestructive: float = 15e-9  #: "completes in about 15ns"
    write_pulse_width: float = 4e-9

    @property
    def tmr(self) -> float:
        """Zero-bias TMR implied by the resistance pair (≈105%)."""
        return (self.r_high - self.r_low) / self.r_low


#: Singleton target set used across calibration, benchmarks and tests.
PAPER_TARGETS = PaperTargets()
