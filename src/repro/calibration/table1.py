"""Derivation of the paper's Table I from the calibrated device.

Table I lists the electrical parameters of the typical device plus, for each
self-reference scheme, the optimized operating point: first/second read
currents, the state resistances at those currents, the roll-off between the
two reads, the optimal β and the maximum sense margin.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.calibration.fit import CalibrationResult, calibrate
from repro.calibration.targets import PAPER_TARGETS, PaperTargets
from repro.core.optimize import (
    BetaOptimum,
    optimize_beta_destructive,
    optimize_beta_nondestructive,
)
from repro.device.mtj import MTJState

__all__ = ["SchemeOperatingPoint", "Table1", "derive_table1"]


@dataclasses.dataclass(frozen=True)
class SchemeOperatingPoint:
    """One scheme's half of Table I."""

    scheme: str
    beta: float
    i_read1: float
    i_read2: float
    r_high_1: float   #: R_H at I_R1 [Ω]
    r_low_1: float    #: R_L at I_R1 [Ω]
    r_high_2: float   #: R_H at I_R2 [Ω]
    r_low_2: float    #: R_L at I_R2 [Ω]
    dr_high_12: float  #: R_H(I_R1) - R_H(I_R2): roll-off between reads [Ω]
    dr_low_12: float   #: R_L(I_R1) - R_L(I_R2) [Ω]
    max_sense_margin: float  #: balanced margin at the optimum [V]


@dataclasses.dataclass(frozen=True)
class Table1:
    """The full reproduced Table I."""

    r_high: float
    r_low: float
    dr_high_max: float
    dr_low_max: float
    r_transistor: float
    i_read_max: float
    tmr: float
    destructive: SchemeOperatingPoint
    nondestructive: SchemeOperatingPoint
    calibration: CalibrationResult


def _operating_point(scheme: str, cell, optimum: BetaOptimum) -> SchemeOperatingPoint:
    mtj = cell.mtj
    i1, i2 = optimum.i_read1, optimum.i_read2
    r_high_1 = float(mtj.resistance(i1, MTJState.ANTIPARALLEL))
    r_low_1 = float(mtj.resistance(i1, MTJState.PARALLEL))
    r_high_2 = float(mtj.resistance(i2, MTJState.ANTIPARALLEL))
    r_low_2 = float(mtj.resistance(i2, MTJState.PARALLEL))
    return SchemeOperatingPoint(
        scheme=scheme,
        beta=optimum.beta,
        i_read1=i1,
        i_read2=i2,
        r_high_1=r_high_1,
        r_low_1=r_low_1,
        r_high_2=r_high_2,
        r_low_2=r_low_2,
        dr_high_12=r_high_1 - r_high_2,
        dr_low_12=r_low_1 - r_low_2,
        max_sense_margin=optimum.max_sense_margin,
    )


def derive_table1(targets: Optional[PaperTargets] = None) -> Table1:
    """Reproduce Table I from the calibrated device."""
    if targets is None:
        targets = PAPER_TARGETS
    calibration = calibrate(targets)
    cell = calibration.cell(targets.r_transistor)
    destructive = optimize_beta_destructive(cell, targets.i_read_max)
    nondestructive = optimize_beta_nondestructive(
        cell, targets.i_read_max, alpha=targets.alpha
    )
    params = calibration.params
    return Table1(
        r_high=params.r_high,
        r_low=params.r_low,
        dr_high_max=params.dr_high_max,
        dr_low_max=params.dr_low_max,
        r_transistor=targets.r_transistor,
        i_read_max=targets.i_read_max,
        tmr=params.tmr,
        destructive=_operating_point("destructive self-reference", cell, destructive),
        nondestructive=_operating_point(
            "nondestructive self-reference", cell, nondestructive
        ),
        calibration=calibration,
    )
