"""Calibration of the device model against the paper's published numbers.

The paper characterizes one "typical device" (its Fig. 2 measured R–I curve)
and derives Table I/II from it.  We cannot digitize the figure, but the
paper pins down enough anchor values (DESIGN.md §2) that the remaining
degrees of freedom — the roll-off curve shapes and the small low-state
roll-off magnitude — can be least-squares fitted so that *both* schemes'
optimized operating points land on the published
(β = 1.22, SM = 76.6 mV) and (β = 2.13, SM = 12.1 mV).
"""

from repro.calibration.fit import (
    CalibrationResult,
    calibrate,
    calibrated_cell,
    calibrated_device,
)
from repro.calibration.targets import PAPER_TARGETS, PaperTargets
from repro.calibration.table1 import Table1, derive_table1

__all__ = [
    "PaperTargets",
    "PAPER_TARGETS",
    "CalibrationResult",
    "calibrate",
    "calibrated_device",
    "calibrated_cell",
    "Table1",
    "derive_table1",
]
