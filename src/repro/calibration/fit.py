"""Least-squares fit of the roll-off model to the paper's operating points.

Free parameters (everything else is pinned by the recovered Table I):

* ``p_high``/``knee_high`` — shape of the high-state (rational) roll-off;
* ``p_low`` — exponent of the low-state (power-law) roll-off;
* ``dr_low_max`` — low-state roll-off magnitude [Ω] (the paper only says it
  is "close to zero").

Residuals: the deviations of both schemes' *numerically optimized*
(β, max-sense-margin) pairs from the paper's
(1.22, 76.6 mV) and (2.13, 12.1 mV).  Four residuals, four parameters —
but the targets are slightly over-determined for any single smooth device
(the two schemes' published numbers imply mildly inconsistent low-state
roll-offs), so the fit lands within ~2% on the betas and ~0.05% on the
margins; EXPERIMENTS.md records the achieved values.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.calibration.targets import PAPER_TARGETS, PaperTargets
from repro.core.cell import Cell1T1J
from repro.core.optimize import optimize_beta_destructive, optimize_beta_nondestructive
from repro.device.mtj import MTJDevice, MTJParams
from repro.device.rolloff import PowerLawRollOff, RationalRollOff
from repro.device.transistor import FixedResistanceTransistor
from repro.errors import ConvergenceError

__all__ = ["CalibrationResult", "calibrate", "calibrated_device", "calibrated_cell"]


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Fitted device model and the achieved operating points."""

    params: MTJParams
    p_high: float
    knee_high: float
    p_low: float
    beta_destructive: float
    margin_destructive: float
    beta_nondestructive: float
    margin_nondestructive: float
    residual_norm: float

    def rolloff_high(self) -> RationalRollOff:
        """The fitted high-state roll-off shape."""
        return RationalRollOff(self.p_high, self.knee_high)

    def rolloff_low(self) -> PowerLawRollOff:
        """The fitted low-state roll-off shape."""
        return PowerLawRollOff(self.p_low)

    def device(self, **device_kwargs) -> MTJDevice:
        """Instantiate the calibrated MTJ."""
        return MTJDevice(
            self.params,
            rolloff_high=self.rolloff_high(),
            rolloff_low=self.rolloff_low(),
            **device_kwargs,
        )

    def cell(self, r_transistor: float = 917.0) -> Cell1T1J:
        """Instantiate the calibrated 1T1J cell."""
        return Cell1T1J(self.device(), FixedResistanceTransistor(r_transistor))


def _build_cell(
    targets: PaperTargets,
    p_high: float,
    knee_high: float,
    p_low: float,
    dr_low_max: float,
) -> Cell1T1J:
    params = MTJParams(
        r_low=targets.r_low,
        r_high=targets.r_high,
        dr_low_max=dr_low_max,
        dr_high_max=targets.dr_high_max,
        i_read_max=targets.i_read_max,
        i_c0=targets.i_switching,
        pulse_width_write=targets.write_pulse_width,
    )
    device = MTJDevice(
        params,
        rolloff_high=RationalRollOff(p_high, knee_high),
        rolloff_low=PowerLawRollOff(p_low),
    )
    return Cell1T1J(device, FixedResistanceTransistor(targets.r_transistor))


def _operating_points(
    cell: Cell1T1J, targets: PaperTargets
) -> Tuple[float, float, float, float]:
    destructive = optimize_beta_destructive(cell, targets.i_read_max)
    nondestructive = optimize_beta_nondestructive(
        cell, targets.i_read_max, alpha=targets.alpha
    )
    return (
        destructive.beta,
        destructive.max_sense_margin,
        nondestructive.beta,
        nondestructive.max_sense_margin,
    )


@functools.lru_cache(maxsize=8)
def calibrate(targets: PaperTargets = PAPER_TARGETS) -> CalibrationResult:
    """Fit (p_high, knee_high, p_low, dr_low_max) so both schemes hit the
    paper's optimized operating points.  Cached — the fit is deterministic.
    """

    def residuals(x: np.ndarray) -> np.ndarray:
        p_high, knee_high, p_low, dr_low_max = x
        try:
            cell = _build_cell(targets, p_high, knee_high, p_low, dr_low_max)
            beta_d, margin_d, beta_n, margin_n = _operating_points(cell, targets)
        except (ConvergenceError, ValueError):
            return np.array([10.0, 10.0, 10.0, 10.0])
        # Scale so a 0.01 beta error weighs like a 0.1 mV margin error.
        return np.array(
            [
                (beta_d - targets.beta_destructive) / 0.01,
                (margin_d - targets.margin_destructive) / 1e-4,
                (beta_n - targets.beta_nondestructive) / 0.01,
                (margin_n - targets.margin_nondestructive) / 1e-4,
            ]
        )

    fit = least_squares(
        residuals,
        x0=np.array([1.2, 2.0, 0.8, 60.0]),
        bounds=(
            np.array([0.3, 0.02, 0.05, 0.0]),
            np.array([4.0, 500.0, 4.0, 400.0]),
        ),
        xtol=1e-12,
        ftol=1e-12,
    )
    p_high, knee_high, p_low, dr_low_max = fit.x
    cell = _build_cell(targets, p_high, knee_high, p_low, dr_low_max)
    beta_d, margin_d, beta_n, margin_n = _operating_points(cell, targets)
    return CalibrationResult(
        params=cell.mtj.params,
        p_high=float(p_high),
        knee_high=float(knee_high),
        p_low=float(p_low),
        beta_destructive=beta_d,
        margin_destructive=margin_d,
        beta_nondestructive=beta_n,
        margin_nondestructive=margin_n,
        residual_norm=float(np.linalg.norm(fit.fun)),
    )


def calibrated_device(targets: PaperTargets = PAPER_TARGETS) -> MTJDevice:
    """The calibrated MTJ device (convenience wrapper)."""
    return calibrate(targets).device()


def calibrated_cell(targets: PaperTargets = PAPER_TARGETS) -> Cell1T1J:
    """The calibrated 1T1J cell with the paper's 917 Ω transistor."""
    return calibrate(targets).cell(r_transistor=targets.r_transistor)
